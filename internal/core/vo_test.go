package core

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"tridiag/internal/lapack"
	"tridiag/internal/pool"
	"tridiag/internal/testmat"
)

// ulpTol returns the comparison tolerance at the spectrum's scale: tol ulps
// of the largest eigenvalue magnitude (with a floor at the denormal range so
// identically-zero spectra compare equal).
func ulpTol(d []float64, ulps float64) float64 {
	var scale float64
	for _, v := range d {
		scale = math.Max(scale, math.Abs(v))
	}
	if scale == 0 {
		return 0
	}
	return ulps * lapack.Eps * scale
}

// voUlps is the spectrum-comparison bar between the values-only lane and the
// full task-flow path: 8 ulp (at spectrum scale) per merge level of the D&C
// tree. The two paths share bit-identical leaf and deflation trajectories,
// but each merge's z-vector is formed differently — two sequential dot
// products per column in the lane versus rows of a blocked GEMM in the full
// path — so the secular roots drift by a few ulp per level, and when that
// drift pushes a borderline z entry across the deflation threshold the flip
// perturbs the spectrum by the threshold itself (~8 ulp at scale; both
// results are within the algorithm's error bound). Single-leaf problems
// (n <= MinPartition) have no shared trajectory at all (Dsterf vs
// DsteqrRobust) and get a flat 64-ulp bar.
func voUlps(n, minPartition int) float64 {
	if minPartition < 2 {
		minPartition = 48
	}
	leaves := len(lapack.PartitionSizes(n, minPartition))
	if leaves <= 1 {
		return 64
	}
	levels := bits.Len(uint(leaves - 1))
	return 8 * float64(levels)
}

// checkValuesOnly solves (d0, e0) with the values-only lane and the full
// task-flow path and requires the spectra to agree to ulps ulp of the
// spectrum scale.
func checkValuesOnly(t *testing.T, name string, n int, d0, e0 []float64, opts *Options, ulps float64) {
	t.Helper()
	full := append([]float64(nil), d0...)
	eFull := append([]float64(nil), e0...)
	q := make([]float64, n*n)
	if _, err := SolveDC(n, full, eFull, q, max(n, 1), opts); err != nil {
		t.Fatalf("%s: full solve: %v", name, err)
	}

	vo := append([]float64(nil), d0...)
	eVO := append([]float64(nil), e0...)
	voOpts := *opts
	voOpts.ValuesOnly = true
	base := pool.InUseBytes()
	res, err := SolveDC(n, vo, eVO, nil, 0, &voOpts)
	if err != nil {
		t.Fatalf("%s: values-only solve: %v", name, err)
	}
	if got := pool.InUseBytes(); got != base {
		t.Errorf("%s: pool accountant moved: %d -> %d", name, base, got)
	}
	if leaked := res.Stats.LeakedBytes(); leaked != 0 {
		t.Errorf("%s: leaked %d bytes", name, leaked)
	}
	for i := 1; i < n; i++ {
		if vo[i] < vo[i-1] {
			t.Fatalf("%s: values-only eigenvalues not sorted at %d", name, i)
		}
	}
	tol := ulpTol(full, ulps)
	for i := 0; i < n; i++ {
		if diff := math.Abs(vo[i] - full[i]); diff > tol {
			t.Fatalf("%s: eigenvalue %d differs: full=%.17g values-only=%.17g (|Δ|=%.3e > tol=%.3e)",
				name, i, full[i], vo[i], diff, tol)
		}
	}
}

func TestValuesOnlyMatchesFullSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 17, 48, 49, 96, 97, 200, 317, 512} {
		d, e := randTridiag(rng, n)
		checkValuesOnly(t, "random", n, d, e, &Options{Workers: 4}, voUlps(n, 0))
	}
	for _, typ := range []int{1, 2, 3, 4, 5} {
		m, err := testmat.Type(typ, 300, rng)
		if err != nil {
			t.Fatal(err)
		}
		checkValuesOnly(t, m.Name, 300, m.D, m.E, &Options{Workers: 4}, voUlps(300, 0))
	}
	// Fixed panel size exercises the non-adaptive secular widths.
	d, e := randTridiag(rng, 257)
	checkValuesOnly(t, "fixed-nb", 257, d, e, &Options{Workers: 3, PanelSize: 32, MinPartition: 16}, voUlps(257, 16))
}

func TestValuesOnlySequentialModes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d0, e0 := randTridiag(rng, 150)
	want := append([]float64(nil), d0...)
	eW := append([]float64(nil), e0...)
	q := make([]float64, 150*150)
	if _, err := SolveDC(150, want, eW, q, 150, nil); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeSequential, ModeForkJoin} {
		d := append([]float64(nil), d0...)
		e := append([]float64(nil), e0...)
		if _, err := SolveDC(150, d, e, nil, 0, &Options{Mode: mode, ValuesOnly: true}); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		tol := ulpTol(want, 64) // Dsterf is a different algorithm: looser bar
		for i := range d {
			if math.Abs(d[i]-want[i]) > tol {
				t.Fatalf("%s: eigenvalue %d differs by %.3e", mode, i, math.Abs(d[i]-want[i]))
			}
		}
	}
	for _, mode := range []Mode{ModeLevelSync, ModeScaLAPACK} {
		d := append([]float64(nil), d0...)
		e := append([]float64(nil), e0...)
		if _, err := SolveDC(150, d, e, nil, 0, &Options{Mode: mode, ValuesOnly: true}); err == nil {
			t.Fatalf("%s: values-only should be rejected", mode)
		}
	}
}

func TestValuesOnlyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const members = 6
	probs := make([]BatchProblem, members)
	fullProbs := make([]BatchProblem, members)
	for i := range probs {
		n := 40 + 37*i
		d, e := randTridiag(rng, n)
		probs[i] = BatchProblem{N: n, D: append([]float64(nil), d...), E: append([]float64(nil), e...)}
		fullProbs[i] = BatchProblem{N: n, D: append([]float64(nil), d...), E: append([]float64(nil), e...),
			Q: make([]float64, n*n), LDQ: n}
	}
	// The full-path batch comparator: identical scaling and leaf
	// trajectories, so the spectra agree to a few ulp.
	fbr, err := SolveDCBatch(fullProbs, &Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]float64, members)
	for i := range fullProbs {
		if fbr.Items[i].Err != nil {
			t.Fatalf("full member %d: %v", i, fbr.Items[i].Err)
		}
		want[i] = fullProbs[i].D
	}
	base := pool.InUseBytes()
	br, err := SolveDCBatch(probs, &Options{Workers: 4, ValuesOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := pool.InUseBytes(); got != base {
		t.Errorf("pool accountant moved: %d -> %d", base, got)
	}
	for i := range probs {
		if br.Items[i].Err != nil {
			t.Fatalf("member %d: %v", i, br.Items[i].Err)
		}
		tol := ulpTol(want[i], voUlps(probs[i].N, 0))
		for j := range want[i] {
			if math.Abs(probs[i].D[j]-want[i][j]) > tol {
				t.Fatalf("member %d eigenvalue %d differs by %.3e", i, j, math.Abs(probs[i].D[j]-want[i][j]))
			}
		}
	}
}
