// Package core implements the paper's contribution: a symmetric tridiagonal
// divide & conquer eigensolver expressed as a sequential task flow and
// executed out of order by the quark runtime.
//
// Each merge of the D&C tree is decomposed into the paper's task kinds
// (Algorithm 1): Compute deflation, PermuteV, LAED4, ComputeLocalW, ReduceW,
// CopyBackDeflated, ComputeVect and UpdateVect, panelized over nb eigenvector
// columns. Tasks touching a panel carry one panel handle plus one Gatherv
// access on a merge-wide handle, so every task has a constant number of
// declared dependencies; the join tasks (Compute deflation, ReduceW, Dlamrg)
// take a single InOut on the merge-wide handle. The DAG is matrix
// independent: all panel tasks are submitted regardless of how much deflation
// occurs, and tasks that end up without work return immediately.
package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"tridiag/internal/blas"
	"tridiag/internal/faultinject"
	"tridiag/internal/lapack"
	"tridiag/internal/pool"
	"tridiag/internal/quark"
)

// Mode selects the execution model, used for the paper's baselines.
type Mode int

const (
	// ModeTaskFlow is the full task-flow algorithm (the paper's solver):
	// independent subproblems, panelized merges, no level barriers.
	ModeTaskFlow Mode = iota
	// ModeLevelSync keeps the panelized merge tasks but synchronizes
	// between tree levels (barriers only).
	ModeLevelSync
	// ModeScaLAPACK is the execution model of ScaLAPACK's PDSTEDC
	// (Figure 7 baseline): level synchronization plus per-merge data
	// redistribution — each merge physically copies its eigenvector block
	// in and out of a scratch area (the distributed-memory exchanges the
	// paper attributes ScaLAPACK's overhead to), measured for real.
	ModeScaLAPACK
	// ModeForkJoin runs the sequential LAPACK algorithm with only the
	// merge GEMMs multithreaded, the execution model of a sequential
	// DSTEDC on top of a multithreaded BLAS (Figure 6 baseline).
	ModeForkJoin
	// ModeSequential runs everything on one thread (LAPACK reference).
	ModeSequential
)

func (m Mode) String() string {
	switch m {
	case ModeTaskFlow:
		return "task-flow"
	case ModeLevelSync:
		return "level-sync"
	case ModeScaLAPACK:
		return "scalapack-model"
	case ModeForkJoin:
		return "fork-join"
	case ModeSequential:
		return "sequential"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Options tunes the solver. The zero value picks reasonable defaults.
type Options struct {
	// Workers is the number of worker goroutines (<=0: GOMAXPROCS).
	Workers int
	// PanelSize is nb, the number of eigenvector columns per panel task.
	// When <= 0 the scheduler picks nb adaptively per merge: panel counts
	// are sized from the merge width and worker count at submit time, and
	// the secular panel width is re-derived from the post-deflation k once
	// the deflation task has run (large panels for small k to avoid task
	// overhead, smaller panels for big k to feed all workers). The chosen
	// width per merge is recorded in Result.Stats (MergeStat.NB).
	PanelSize int
	// MinPartition is the leaf cutoff of the D&C tree (leaves at most this
	// size are solved by Dsteqr). The default (48) keeps the O(m³) QR
	// iteration on the leaves from dominating heavily-deflating solves —
	// with 128-wide leaves the leaf solves are over half the n=2000 wall
	// time, while the extra merge level costs only a few small GEMMs.
	// LAPACK's DSTEDC uses SMLSIZ=25 for the same reason.
	MinPartition int
	// ExtraWorkspace, as in the paper, permits PermuteV to overlap LAED4
	// and CopyBackDeflated to overlap ComputeVect on the same panel, at
	// the cost of extra buffering (here: fewer induced dependencies).
	ExtraWorkspace bool
	// CaptureGraph records the task DAG with per-task timings.
	CaptureGraph bool
	// Mode selects the execution model (default ModeTaskFlow).
	Mode Mode
	// Progress, when non-nil, is called after every executed task of a
	// task-flow solve (the quark WithProgress heartbeat). External watchdogs
	// use it to detect stalled solves. It runs on worker goroutines, so it
	// must be concurrency-safe and cheap.
	Progress func()
	// ValuesOnly computes eigenvalues only: q is never touched (it may be
	// nil, and ldq is ignored) and the task flow submits none of the
	// eigenvector task classes — each tree node carries just the first and
	// last rows of its notional eigenvector block, dropping workspace from
	// O(n²) to O(n·depth) (DESIGN.md §17). Supported for ModeTaskFlow;
	// ModeSequential and ModeForkJoin degrade to the root-free Dsterf
	// reference, and the level-synchronized baselines are rejected.
	ValuesOnly bool
	// DisableABFT turns off the always-on silent-corruption defenses of the
	// task-flow modes (DESIGN.md §18): ABFT checksum rows on the packed
	// UpdateVect operands with per-panel verification, the per-merge trace
	// and interlacing invariants, and the in-place re-execution of kernels
	// whose output failed a check. The checks cost O(n) per merge plus
	// O(m·n) per verified GEMM panel against the merge's O(m·n·k) work; they
	// are on by default and this switch exists for overhead measurement, not
	// production use.
	DisableABFT bool
}

func (o *Options) withDefaults() Options {
	var v Options
	if o != nil {
		v = *o
	}
	if v.PanelSize < 0 {
		v.PanelSize = 0 // adaptive
	}
	if v.MinPartition < 2 {
		v.MinPartition = 48
	}
	return v
}

// Result reports solver metadata: the captured task graph (if requested) and
// operation statistics for the cost-model experiments.
type Result struct {
	Graph *quark.Graph
	Stats *Stats
}

// SolveDC computes all eigenpairs of the symmetric tridiagonal matrix
// (d, e): on exit d holds the ascending eigenvalues and q (n×n, column
// leading dimension ldq) the corresponding orthonormal eigenvectors; e is
// destroyed. The entry contents of q are ignored — callers may hand the
// solver a dirty, reused workspace; the leaf tasks establish the zero
// structure the merge kernels depend on.
func SolveDC(n int, d, e []float64, q []float64, ldq int, opts *Options) (*Result, error) {
	return SolveDCContext(context.Background(), n, d, e, q, ldq, opts)
}

// SolveDCContext is SolveDC bounded by a context: an already-cancelled
// context returns ctx.Err() before any task runs, and a cancellation (or
// deadline expiry) during a task-flow solve aborts within one task
// granularity — the kernels currently executing finish, every remaining
// task is skipped, and ctx.Err() is returned. The sequential and fork-join
// modes check the context only between coarse phases. On a non-nil error
// the contents of d, e and q are unspecified.
func SolveDCContext(ctx context.Context, n int, d, e []float64, q []float64, ldq int, opts *Options) (*Result, error) {
	o := opts.withDefaults()
	if n < 0 {
		return nil, fmt.Errorf("core: negative n")
	}
	res := &Result{Stats: newStats()}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if n == 0 {
		return res, nil
	}
	if !o.ValuesOnly && ldq < n {
		return nil, fmt.Errorf("core: ldq=%d < n=%d", ldq, n)
	}
	if o.ValuesOnly {
		switch o.Mode {
		case ModeSequential, ModeForkJoin:
			// The values-only LAPACK reference: root-free QR iteration.
			return res, lapack.Dsterf(n, d, e)
		case ModeLevelSync, ModeScaLAPACK:
			return nil, fmt.Errorf("core: ValuesOnly supports the %s and sequential modes only (got %s)", ModeTaskFlow, o.Mode)
		}
		if n <= o.MinPartition {
			return res, lapack.Dsterf(n, d, e)
		}
	}

	switch o.Mode {
	case ModeSequential:
		err := lapack.Dstedc(n, d, e, q, ldq, &lapack.DCConfig{SmallSize: o.MinPartition})
		return res, err
	case ModeForkJoin:
		workers := o.Workers
		gemm := func(ta, tb bool, m, nn, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
			blas.DgemmParallel(workers, ta, tb, m, nn, k, alpha, a, lda, b, ldb, beta, c, ldc)
		}
		err := lapack.Dstedc(n, d, e, q, ldq, &lapack.DCConfig{SmallSize: o.MinPartition, Gemm: gemm})
		return res, err
	}

	if n <= o.MinPartition {
		// Single leaf: no tree, solve directly (with the QR retry net).
		fellBack, err := lapack.DsteqrRobust(n, d, e, q, ldq)
		if fellBack {
			res.Stats.count("STEDCFallback", 1)
		}
		return res, err
	}

	rtOpts := []quark.Option{quark.WithContext(ctx), quark.WithTaskTimer(res.Stats.addTaskTime)}
	if o.CaptureGraph {
		rtOpts = append(rtOpts, quark.WithGraphCapture())
	}
	if o.Progress != nil {
		rtOpts = append(rtOpts, quark.WithProgress(o.Progress))
	}
	if !o.DisableABFT {
		rtOpts = append(rtOpts, quark.WithTaskRetry(corruptionRetryPred))
	}
	rt := quark.New(o.Workers, rtOpts...)

	var merges []*mergeState
	var fl []float64
	var err error
	if o.ValuesOnly {
		// The 2×n eigenvector-row carrier, the lane's only O(n) shared
		// buffer; released once the runtime has stopped.
		fl = pool.Get(2 * n)
		err = submitTaskFlowVO(rt, n, d, e, fl, &o, res.Stats, &merges)
	} else {
		err = submitTaskFlow(rt, rt.Wait, n, d, e, q, ldq, &o, res.Stats, &merges)
	}
	werr := rt.Wait()
	res.Stats.setABFTRetries(rt.Retries())
	if o.CaptureGraph {
		res.Graph = rt.Graph()
	}
	// Shutdown joins the workers, so after it no task can touch a merge
	// state: sweep the workspaces that failed or cancelled merges abandoned
	// (their release chain was skipped) and write them off the pool
	// accountant so budget accounting stays honest.
	rt.Shutdown()
	var leaked int64
	for _, ms := range merges {
		leaked += ms.sweepLeaked()
	}
	res.Stats.addLeaked(leaked)
	pool.Put(fl)
	if err != nil {
		return res, err
	}
	return res, werr
}

// corruptionRetryPred is the WithTaskRetry policy of the ABFT layer: a kernel
// whose inline check detected silent corruption (a failed GEMM checksum or a
// secular root outside its interlacing bracket) is re-executed once in place.
// Only idempotent classes qualify — LAED4 reads read-only poles and fully
// overwrites its output panel, UpdateVect is a beta=0 full-overwrite GEMM —
// so the recompute replaces the corrupted output without double-applying
// anything. Classes that transform state in place (ComputeVect) or whose
// corruption is detected downstream of the writer (trace defects surface in
// Dlamrg) heal at the solve level instead, through the eigen retry ladder.
func corruptionRetryPred(class string, err error) bool {
	switch class {
	case "LAED4", "UpdateVect":
		return faultinject.Corruption(err)
	}
	return false
}

// corruptHook lets an armed KindCorrupt chaos probe flip a bit in a kernel's
// output buffer; one atomic load and a no-op unless probes are enabled.
func corruptHook(class string, data []float64) {
	if faultinject.Active() {
		faultinject.Corrupt(class, data)
	}
}

// kahanSum returns the compensated sum, the absolute-value sum, and the
// absolute maximum of v: the trace invariant compares Σd across a merge
// against a ~256·eps tolerance, which naive n-term summation noise
// (O(n·eps·Σ|d|)) would exceed for large one-signed spectra; compensation
// makes the summation error O(eps·Σ|d|) independent of n.
func kahanSum(v []float64) (sum, absSum, maxAbs float64) {
	var c float64
	for _, x := range v {
		a := math.Abs(x)
		absSum += a
		if a > maxAbs {
			maxAbs = a
		}
		y := x - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum, absSum, maxAbs
}

// node is one subtree of the D&C partition.
type node struct {
	start, size int
	hV, hD      *quark.Handle
}

// taskRuntime is the submission surface shared by *quark.Runtime and
// *quark.Scope. Single solves submit straight to the runtime; batched solves
// submit each matrix's task flow through its own scope, so a failure cascade
// attributes (and confines its skip accounting) to one matrix while every
// matrix shares the same worker pool.
type taskRuntime interface {
	Handle(name string) *quark.Handle
	Submit(class, label string, fn func(), accesses ...quark.Access)
	SubmitPrio(class, label string, priority int, fn func(), accesses ...quark.Access)
	Workers() int
}

// submitTaskFlow submits the whole task graph in sequential program order.
// Every merge's runtime state is appended to *merges so the caller can sweep
// abandoned workspaces after the runtime stops. barrier is the runtime's Wait,
// used only by the level-synchronized modes (ModeLevelSync, ModeScaLAPACK);
// batched solves always run ModeTaskFlow and pass nil.
func submitTaskFlow(rt taskRuntime, barrier func() error, n int, d, e []float64, q []float64, ldq int, o *Options, st *Stats, merges *[]*mergeState) error {
	sizes := lapack.PartitionSizes(n, o.MinPartition)
	starts := make([]int, len(sizes)+1)
	for i, s := range sizes {
		starts[i+1] = starts[i] + s
	}

	// The matrix may need scaling to the safe range; orgnrm is computed up
	// front on the master (O(n)), the scaling itself is the Scale task.
	orgnrm := lapack.Dlanst('M', n, d, e)
	if orgnrm == 0 {
		rt.Submit("LASET", "identity", func() {
			for j := 0; j < n; j++ {
				col := q[j*ldq : j*ldq+n]
				for i := range col {
					col[i] = 0
				}
				col[j] = 1
			}
		})
		return nil
	}

	hScale := rt.Handle("scale")
	rt.Submit("Scale", "scale+partition", func() {
		if orgnrm != 1 {
			lapack.Dlascl(n, 1, orgnrm, 1, d, n)
			lapack.Dlascl(n-1, 1, orgnrm, 1, e, n-1)
		}
		// Rank-one tear at every internal boundary.
		for _, b := range starts[1 : len(starts)-1] {
			ae := math.Abs(e[b-1])
			d[b-1] -= ae
			d[b] -= ae
		}
		st.count("Scale", int64(n))
		corruptHook("Scale", d[:n])
	}, quark.Write(hScale))

	indxq := make([]int, n)

	// Leaf solves (the paper's STEDC leaf tasks).
	level := make([]*node, len(sizes))
	for i := range sizes {
		st0, sz := starts[i], sizes[i]
		nd := &node{start: st0, size: sz,
			hV: rt.Handle(fmt.Sprintf("V[%d:%d]", st0, st0+sz)),
			hD: rt.Handle(fmt.Sprintf("d[%d:%d]", st0, st0+sz))}
		level[i] = nd
		rt.Submit("STEDC", fmt.Sprintf("leaf[%d:%d]", st0, st0+sz), func() {
			// The merge kernels (deflation rotations, deflated-column copies)
			// operate on full merge-window columns and rely on the
			// structurally-zero off-block rows of q holding exact zeros —
			// LAPACK's Z=I invariant. Establish it here so callers may pass q
			// with arbitrary entry contents (e.g. a reused workspace): every
			// merge rewrites its window densely, so leaf-time zeroing is
			// enough by induction up the tree.
			for j := st0; j < st0+sz; j++ {
				col := q[j*ldq : j*ldq+n]
				for i := range col[:st0] {
					col[i] = 0
				}
				for i := st0 + sz; i < n; i++ {
					col[i] = 0
				}
			}
			fellBack, err := lapack.DsteqrRobust(sz, d[st0:st0+sz], e[st0:st0+max(sz-1, 0)], q[st0+st0*ldq:], ldq)
			if err != nil {
				panic(err)
			}
			if fellBack {
				st.count("STEDCFallback", 1)
			}
			for j := 0; j < sz; j++ {
				indxq[st0+j] = j
			}
			st.count("STEDC", int64(sz)*int64(sz)*int64(sz))
			corruptHook("STEDC", d[st0:st0+sz])
		}, quark.Read(hScale), quark.Write(nd.hV), quark.Write(nd.hD))
	}

	// Merge levels, bottom-up.
	lvl := 0
	for len(level) > 1 {
		lvl++
		var next []*node
		for i := 0; i+1 < len(level); i += 2 {
			left, right := level[i], level[i+1]
			parent := &node{start: left.start, size: left.size + right.size,
				hV: rt.Handle(fmt.Sprintf("V[%d:%d]", left.start, left.start+left.size+right.size)),
				hD: rt.Handle(fmt.Sprintf("d[%d:%d]", left.start, left.start+left.size+right.size))}
			*merges = append(*merges, submitMerge(rt, parent, left, right, lvl, d, e, q, ldq, indxq, o, st))
			next = append(next, parent)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		if o.Mode == ModeLevelSync || o.Mode == ModeScaLAPACK {
			// A real barrier between tree levels (the ScaLAPACK execution
			// model). The no-op barrier task also materializes the barrier
			// as graph edges so the replay simulator reproduces it.
			acc := make([]quark.Access, 0, 2*len(level))
			for _, nd := range level {
				acc = append(acc, quark.ReadWrite(nd.hV), quark.ReadWrite(nd.hD))
			}
			rt.Submit("Barrier", fmt.Sprintf("level%d", lvl), func() {}, acc...)
			if err := barrier(); err != nil {
				return err
			}
		}
	}

	root := level[0]
	rt.Submit("SortEigenvectors", "sort", func() {
		lapack.SortEigen(n, d, q, ldq, indxq)
		if orgnrm != 1 {
			lapack.Dlascl(n, 1, 1, orgnrm, d, n)
		}
		st.count("SortEigenvectors", int64(n)*int64(n))
		corruptHook("SortEigenvectors", d[:n])
	}, quark.ReadWrite(root.hV), quark.ReadWrite(root.hD))
	return nil
}

// adaptivePanelNB picks the submit-time panel width for a merge of width nm:
// the DAG is matrix independent (submitted before deflation is known), so the
// panel count is sized to give each worker a few stealable panels while
// keeping panels wide enough to amortize per-task overhead. The clamp is
// deliberately tight (96–128): the submit-time width only fixes the panel
// COUNT, and too few panels would force the runtime secular width above its
// cache budget (see secularPanelNB), while panels narrower than ~96 columns
// measurably lose to task overhead on small merges.
func adaptivePanelNB(nm, workers int) int {
	nb := (nm + 4*workers - 1) / (4 * workers)
	return min(max(nb, 96), 128)
}

// secularPanelNB re-derives the secular panel width once the post-deflation k
// is known: small k gets a few wide panels (the surplus submitted panels
// no-op immediately), large k gets panels sized to feed every worker AND to
// keep an nb-wide, k-row eigenvector panel — the unit the UpdateVect packed
// GEMM streams — within a ~2 MiB cache footprint. The width never drops
// below ceil(k/npanels), so the panels submitted for the worst case (no
// deflation) always cover all k secular columns.
func secularPanelNB(k, npanels, workers int) int {
	if k == 0 {
		return 0
	}
	nb := (k + 4*workers - 1) / (4 * workers)
	nb = max(nb, 48)
	if cacheNB := max(2<<20/(8*k), 64); nb > cacheNB {
		nb = cacheNB
	}
	return max(nb, (k+npanels-1)/npanels)
}

// mergeState is the runtime-shared state of one merge: filled by the
// Compute-deflation task, consumed by the panel tasks.
type mergeState struct {
	df    *lapack.Deflation
	ws    *lapack.MergeWorkspace
	what  []float64   // stabilized ẑ (ReduceW output)
	wlocs [][]float64 // per-panel Gu partial products
	// nbSec is the panel width of the secular tasks (LAED4, ComputeLocalW,
	// ComputeVect, UpdateVect, PackV). With a fixed Options.PanelSize it
	// equals the submit-time nb; in adaptive mode the deflation task
	// recomputes it from the post-deflation k before any secular task runs
	// (every secular task depends on the deflation join through hS or the
	// parent handles, so the write is ordered before all reads).
	nbSec int
	// Values-only merge state (nil on the full path, and at the root of a
	// values-only solve, whose carrier has no consumer): the per-secular-j
	// Dlaed4 root representation (porg, ptau) for the O(k) eigenvector
	// reconstruction, and the children's rotated outer carrier rows in
	// grouped order (vgtop: row 0 over the C12 top-block columns, vgbot:
	// row nm-1 over the C23 bottom-block columns).
	porg, ptau   []float64
	vgtop, vgbot []float64
	// ABFT trace invariant (DESIGN.md §18), filled by the deflation join when
	// the defenses are on: the merged spectrum must sum to traceWant within
	// traceTol (checked by the Dlamrg join, which is ordered after every
	// eigenvalue writer of the merge). statIdx is the merge's MergeStat index
	// so the measured defect lands in the stats.
	traceWant, traceTol float64
	abft                bool
	statIdx             int
	// pending counts the merge's not-yet-finished workspace consumers
	// (UpdateVect and CopyBackDeflated panels plus PackV on the full path,
	// the UpdateZ panels on the values-only path); when the last one
	// finishes, the pooled workspace and packed operands are recycled.
	pending atomic.Int32
}

// done marks one workspace consumer finished; the last one returns the
// merge scratch to the pool. Skipped tasks (cancelled merges, successors of
// a failed task) never reach done, so a failing merge simply leaves its
// buffers to the GC instead of risking a recycle of live data; sweepLeaked
// accounts those abandoned buffers after the runtime stops.
func (ms *mergeState) done() {
	if ms.pending.Add(-1) == 0 {
		if ms.ws != nil {
			ms.ws.Release()
		}
		pool.Put(ms.what)
		ms.what = nil
		pool.Put(ms.porg)
		ms.porg = nil
		pool.Put(ms.ptau)
		ms.ptau = nil
		pool.Put(ms.vgtop)
		ms.vgtop = nil
		pool.Put(ms.vgbot)
		ms.vgbot = nil
	}
}

// sweepLeaked reports the pooled bytes an abandoned merge still holds: when
// any workspace consumer was skipped (pending never reached zero), the
// buffers were deliberately leaked to the GC, and their accounted bytes are
// written off the pool accountant (pool.Forget) so they do not read as
// checked-out workspace forever. Must only be called after the runtime has
// shut down, when no task can still touch ms.
func (ms *mergeState) sweepLeaked() int64 {
	if ms.pending.Load() <= 0 {
		return 0
	}
	var b int64
	if ms.ws != nil {
		b = ms.ws.PooledBytes()
	}
	b += pool.AccountedBytes(ms.what) + pool.AccountedBytes(ms.porg) + pool.AccountedBytes(ms.ptau) +
		pool.AccountedBytes(ms.vgtop) + pool.AccountedBytes(ms.vgbot)
	for _, wl := range ms.wlocs {
		b += pool.AccountedBytes(wl)
	}
	if b > 0 {
		pool.Forget(b)
	}
	return b
}

// Merge task priorities, as the paper does in QUARK: merges nearer the root
// of the D&C tree outrank lower levels (the root merge is the critical path),
// and within a merge the join tasks (ComputeDeflation, ReduceW, Dlamrg) and
// the secular chain (LAED4 → ComputeLocalW → ComputeVect) outrank the
// off-critical-path copies (CopyBackDeflated, Redistribute). The stride of 8
// leaves room for the per-kind offsets below.
const (
	prioStride    = 8
	prioJoin      = 6
	prioDlamrg    = 5
	prioSecular   = 4
	prioPermute   = 3
	prioUpdate    = 2
	prioCopy      = 1
	prioRedistrib = 1
)

// submitMerge submits the paper's Algorithm 1 for one merge node.
//
// Access-declaration order matters for locality (not for correctness): the
// quark scheduler hints a ready task onto the worker that last wrote the
// task's last-declared non-Gatherv handle, so each task lists its panel
// handle last (UpdateVect follows ComputeVect's hSec panel, CopyBackDeflated
// follows PermuteV's hPerm panel, and so on).
func submitMerge(rt taskRuntime, parent, left, right *node, lvl int, d, e []float64, q []float64, ldq int, indxq []int, o *Options, st *Stats) *mergeState {
	prio := lvl * prioStride
	start := parent.start
	nm := parent.size
	n1 := left.size
	nb := o.PanelSize
	if nb <= 0 {
		nb = adaptivePanelNB(nm, rt.Workers())
	}
	npanels := (nm + nb - 1) / nb
	ms := &mergeState{wlocs: make([][]float64, npanels), nbSec: nb}
	// Workspace consumers: every UpdateVect and CopyBackDeflated panel plus
	// the PackV task; the last to finish recycles the merge scratch.
	ms.pending.Store(int32(2*npanels + 1))

	dd := d[start : start+nm]
	qq := q[start+start*ldq:]
	ixq := indxq[start : start+nm]
	rhoAddr := start + n1 - 1 // e index of the coupling element

	hS := rt.Handle(fmt.Sprintf("ws[%d:%d]", start, start+nm))
	hPack := rt.Handle(fmt.Sprintf("pack[%d:%d]", start, start+nm))
	hPerm := make([]*quark.Handle, npanels)
	hSec := make([]*quark.Handle, npanels)
	for p := 0; p < npanels; p++ {
		hPerm[p] = rt.Handle(fmt.Sprintf("perm[%d]@%d", p, start))
		hSec[p] = rt.Handle(fmt.Sprintf("sec[%d]@%d", p, start))
	}

	name := func(kind string, p int) string {
		return fmt.Sprintf("%s[%d:%d]p%d", kind, start, start+nm, p)
	}

	// Compute deflation: the first join. Forms z, scans for deflation,
	// applies pair rotations on V, allocates the merge workspace.
	rt.SubmitPrio("ComputeDeflation", fmt.Sprintf("deflate[%d:%d]", start, start+nm), prio+prioJoin, func() {
		rho := e[rhoAddr]
		// Trace invariant: capture Σd over the block at merge entry; the
		// deflation rotations preserve it exactly and the rank-one update
		// adds df.Rho, so the merged spectrum must sum to traceIn + Rho
		// (checked by the Dlamrg join).
		var traceIn, absIn, dmaxIn float64
		if !o.DisableABFT {
			traceIn, absIn, dmaxIn = kahanSum(dd)
		}
		z := pool.Get(nm)
		defer pool.Put(z)
		blas.Dcopy(n1, qq[n1-1:], ldq, z, 1)
		blas.Dcopy(nm-n1, qq[n1+n1*ldq:], ldq, z[n1:], 1)
		df, err := lapack.Dlaed2Deflate(nm, n1, dd, qq, ldq, ixq, rho, z)
		if err != nil {
			panic(err)
		}
		ms.df = df
		ms.ws = lapack.NewMergeWorkspace(df)
		ms.what = pool.Get(df.K)
		if o.PanelSize <= 0 {
			ms.nbSec = secularPanelNB(df.K, npanels, rt.Workers())
		}
		if !o.DisableABFT {
			ms.traceWant, ms.traceTol = lapack.TraceBudget(traceIn, absIn, dmaxIn, df.Rho, nm)
			ms.abft = true
		}
		st.count("ComputeDeflation", int64(nm))
		ms.statIdx = st.recordMerge(lvl, nm, df.K, ms.nbSec)
		// A corrupted pole propagates into every secular root of the merge
		// and breaks the trace invariant; dd itself is fully overwritten by
		// the LAED4 and CopyBackDeflated panels, so Dlamda is the join's
		// output that actually ships.
		corruptHook("ComputeDeflation", df.Dlamda)
	}, quark.ReadWrite(parent.hV), quark.ReadWrite(parent.hD),
		quark.Read(left.hV), quark.Read(right.hV),
		quark.Read(left.hD), quark.Read(right.hD),
		quark.Write(hS))

	// Redistribution (ScaLAPACK model only): the distributed solver must
	// gather the block-cyclic eigenvector data before the merge; the copies
	// are performed for real so their cost is measured, not modelled. The
	// scratch target is not consumed — the overhead is the point.
	var redist []float64
	if o.Mode == ModeScaLAPACK {
		redist = make([]float64, nm*nm)
		for p := 0; p < npanels; p++ {
			g0, g1 := p*nb, min((p+1)*nb, nm)
			rt.SubmitPrio("Redistribute", name("RedistIn", p), prio+prioRedistrib, func() {
				for g := g0; g < g1; g++ {
					copy(redist[g*nm:g*nm+nm], qq[g*ldq:g*ldq+nm])
				}
				st.count("Redistribute", int64(g1-g0)*int64(nm))
			}, quark.Read(parent.hV), quark.ReadWrite(hPerm[p]))
		}
	}

	// PermuteV: copy grouped columns into compressed workspace, per panel.
	for p := 0; p < npanels; p++ {
		p := p
		g0, g1 := p*nb, min((p+1)*nb, nm)
		rt.SubmitPrio("PermuteV", name("PermuteV", p), prio+prioPermute, func() {
			ms.df.PermutePanel(qq, ldq, ms.ws, g0, g1)
			st.count("PermuteV", int64(g1-g0)*int64(nm))
			// Corrupt only the first column this panel wrote — the other
			// panels' regions are being written concurrently.
			corruptHook("PermuteV", ms.df.PermutedColumn(ms.ws, g0))
		}, quark.Read(parent.hV), quark.Gather(hS), quark.ReadWrite(hPerm[p]))
	}

	// LAED4: solve the secular equation per panel of eigenvalues. The panel
	// ranges of the secular tasks come from ms.nbSec at run time, not from
	// the submit-time nb: in adaptive mode the deflation task re-derives the
	// width from the post-deflation k.
	for p := 0; p < npanels; p++ {
		p := p
		acc := []quark.Access{quark.Gather(hS), quark.Gather(parent.hD)}
		if !o.ExtraWorkspace {
			// Without extra workspace the secular panel shares storage
			// with the permutation buffer: serialize after PermuteV.
			acc = append(acc, quark.Read(hPerm[p]))
		}
		acc = append(acc, quark.ReadWrite(hSec[p]))
		rt.SubmitPrio("LAED4", name("LAED4", p), prio+prioSecular, func() {
			k := ms.df.K
			j0 := p * ms.nbSec
			j1 := min(j0+ms.nbSec, k)
			if j0 >= j1 {
				return
			}
			nfb, err := ms.df.SecularPanel(ms.ws, dd, j0, j1)
			if err != nil {
				panic(err)
			}
			if nfb > 0 {
				st.count("LAED4Bisect", int64(nfb))
			}
			st.count("LAED4", int64(j1-j0)*int64(k))
			corruptHook("LAED4", dd[j0:j1])
			if !o.DisableABFT {
				// Interlacing invariant; a violation is panicked as a
				// corruption error, which re-executes this panel in place
				// (SecularPanel fully overwrites its outputs).
				st.count("ABFTInvariant", 1)
				if ierr := ms.df.CheckInterlacing(dd, j0, j1); ierr != nil {
					st.count("ABFTInvariantFail", 1)
					panic(ierr)
				}
			}
		}, acc...)
	}

	// ComputeLocalW: panel-local factors of Gu's stabilization product.
	for p := 0; p < npanels; p++ {
		p := p
		rt.SubmitPrio("ComputeLocalW", name("ComputeLocalW", p), prio+prioSecular, func() {
			k := ms.df.K
			j0 := p * ms.nbSec
			j1 := min(j0+ms.nbSec, k)
			if j0 >= j1 {
				return
			}
			wl := pool.Get(k)
			// Publish the buffer before running the kernel: if LocalWPanel
			// panics, sweepLeaked must see wl to write it off the accountant.
			ms.wlocs[p] = wl
			for i := range wl {
				wl[i] = 1
			}
			ms.df.LocalWPanel(ms.ws, wl, j0, j1)
			st.count("ComputeLocalW", int64(j1-j0)*int64(k))
			corruptHook("ComputeLocalW", wl)
		}, quark.Gather(hS), quark.ReadWrite(hSec[p]))
	}

	// ReduceW: the second join, combining the panel products into ẑ.
	rt.SubmitPrio("ReduceW", fmt.Sprintf("ReduceW[%d:%d]", start, start+nm), prio+prioJoin, func() {
		ms.df.FinishW(ms.what, ms.wlocs...)
		for p, wl := range ms.wlocs {
			pool.Put(wl)
			ms.wlocs[p] = nil
		}
		st.count("ReduceW", int64(ms.df.K))
		corruptHook("ReduceW", ms.what)
	}, quark.ReadWrite(hS))

	// CopyBackDeflated: move deflated vectors to the tail of the parent V.
	// Runs concurrently with ReduceW/ComputeLocalW (Figure 2), waiting only
	// for the PermuteV group through the Gatherv-vs-readers rule on hV.
	for p := 0; p < npanels; p++ {
		p := p
		c0 := p * nb
		acc := []quark.Access{quark.Gather(parent.hV), quark.Gather(parent.hD), quark.ReadWrite(hPerm[p])}
		rt.SubmitPrio("CopyBackDeflated", name("CopyBack", p), prio+prioCopy, func() {
			defer ms.done()
			k := ms.df.K
			j0, j1 := max(c0, k)-k, min(c0+nb, nm)-k
			if j0 >= j1 {
				return
			}
			ms.df.CopyBackPanel(qq, ldq, dd, ms.ws, j0, j1)
			st.count("CopyBackDeflated", int64(j1-j0)*int64(nm))
			// Corrupt this panel's deflated eigenvalues: the trace check in
			// Dlamrg catches any drift in the merged spectrum.
			corruptHook("CopyBackDeflated", dd[k+j0:k+j1])
		}, acc...)
	}

	// ComputeVect: stabilize and form the updated eigenvectors X per panel.
	for p := 0; p < npanels; p++ {
		p := p
		acc := []quark.Access{quark.Read(hS)}
		if !o.ExtraWorkspace {
			// Without extra workspace the deflated copy-back must vacate
			// the buffer first: serialize after CopyBackDeflated.
			acc = append(acc, quark.Read(hPerm[p]))
		}
		acc = append(acc, quark.ReadWrite(hSec[p]))
		rt.SubmitPrio("ComputeVect", name("ComputeVect", p), prio+prioSecular, func() {
			k := ms.df.K
			j0 := p * ms.nbSec
			j1 := min(j0+ms.nbSec, k)
			if j0 >= j1 {
				return
			}
			ms.df.VectorsPanel(ms.ws, ms.what, j0, j1)
			st.count("ComputeVect", int64(j1-j0)*int64(k))
			corruptHook("ComputeVect", ms.ws.S[j0*k:j1*k])
		}, acc...)
	}

	// PackV: repack the compressed GEMM operands Q2Top/Q2Bot into blocked
	// form once per merge; every UpdateVect panel then reuses the packed
	// operands instead of re-streaming (and re-packing) Q2 per panel. The
	// Gatherv on the parent V orders it after every PermuteV reader (which
	// fill Q2Top/Q2Bot) while leaving it concurrent with the UpdateVect
	// gather group; the hPack write→read edge orders it before each use.
	rt.SubmitPrio("PackV", fmt.Sprintf("PackV[%d:%d]", start, start+nm), prio+prioSecular, func() {
		defer ms.done()
		k := ms.df.K
		if k == 0 {
			return
		}
		pack := ms.df.PackV
		if !o.DisableABFT {
			pack = ms.df.PackVChecked
		}
		if bytes := pack(ms.ws, min(ms.nbSec, k)); bytes > 0 {
			st.count("PackV", int64(bytes))
		}
		// Corrupt the packed operand itself, after its checksum rows were
		// computed from the clean data: every UpdateVect GEMM through it must
		// then fail verification.
		if faultinject.Active() {
			if ms.ws.PackTop != nil {
				faultinject.Corrupt("PackV", ms.ws.PackTop.PackedData())
			} else if ms.ws.PackBot != nil {
				faultinject.Corrupt("PackV", ms.ws.PackBot.PackedData())
			}
		}
	}, quark.Gather(parent.hV), quark.Write(hPack))

	// UpdateVect: V = Ṽ × X, two compressed GEMMs per panel (through the
	// shared packed operands where PackV judged the shape worthwhile). The
	// merge-done bookkeeping runs through a sync.Once on the success path —
	// not a defer — so a panel panicking on a failed ABFT checksum does not
	// release the shared workspace its in-place re-execution is about to
	// read, and the retry's own completion still releases it exactly once.
	for p := 0; p < npanels; p++ {
		p := p
		var once sync.Once
		rt.SubmitPrio("UpdateVect", name("UpdateVect", p), prio+prioUpdate, func() {
			k := ms.df.K
			j0 := p * ms.nbSec
			j1 := min(j0+ms.nbSec, k)
			if j0 >= j1 {
				once.Do(ms.done)
				return
			}
			hits, misses := ms.df.UpdatePanel(qq, ldq, ms.ws, j0, j1, nil)
			if hits > 0 {
				st.count("UpdateVectPackHit", int64(hits))
			}
			if misses > 0 {
				st.count("UpdateVectPackMiss", int64(misses))
			}
			st.count("UpdateVect", 2*int64(j1-j0)*int64(nm)*int64(k))
			corruptHook("UpdateVect", qq[j0*ldq:j0*ldq+nm])
			if !o.DisableABFT {
				checked, cerr := ms.df.VerifyUpdatePanel(qq, ldq, ms.ws, j0, j1)
				if checked > 0 {
					st.count("ABFTChecksum", int64(checked))
				}
				if cerr != nil {
					st.count("ABFTChecksumFail", 1)
					panic(cerr)
				}
			}
			once.Do(ms.done)
		}, quark.Gather(parent.hV), quark.Read(hPack), quark.Read(hSec[p]))
	}

	// Redistribution back to block-cyclic layout (ScaLAPACK model only).
	if o.Mode == ModeScaLAPACK {
		for p := 0; p < npanels; p++ {
			g0, g1 := p*nb, min((p+1)*nb, nm)
			rt.SubmitPrio("Redistribute", name("RedistOut", p), prio+prioRedistrib, func() {
				for g := g0; g < g1; g++ {
					copy(redist[g*nm:g*nm+nm], qq[g*ldq:g*ldq+nm])
				}
				st.count("Redistribute", int64(g1-g0)*int64(nm))
			}, quark.Read(parent.hV), quark.ReadWrite(hPerm[p]), quark.Read(hSec[p]))
		}
	}

	// Dlamrg: build the sorting permutation for the merged spectrum. Its
	// ReadWrite on the parent d-handle orders it after every eigenvalue
	// writer of the merge, so this is where the trace invariant is checked.
	rt.SubmitPrio("Dlamrg", fmt.Sprintf("Dlamrg[%d:%d]", start, start+nm), prio+prioDlamrg, func() {
		k := ms.df.K
		corruptHook("Dlamrg", dd)
		if ms.abft {
			st.count("ABFTInvariant", 1)
			defect, terr := lapack.CheckTrace(dd, nm, ms.traceWant, ms.traceTol)
			st.setMergeTraceDefect(ms.statIdx, defect)
			if terr != nil {
				st.count("ABFTInvariantFail", 1)
				panic(terr)
			}
		}
		if k == 0 {
			for i := 0; i < nm; i++ {
				ixq[i] = i
			}
			return
		}
		lapack.Dlamrg(k, nm-k, dd, 1, -1, ixq)
		st.count("Dlamrg", int64(nm))
	}, quark.ReadWrite(parent.hD))
	return ms
}
