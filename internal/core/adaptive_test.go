package core

import (
	"math/rand"
	"testing"
)

func TestAdaptivePanelNBBounds(t *testing.T) {
	for _, tc := range []struct{ nm, workers int }{
		{10, 1}, {100, 1}, {2000, 1}, {2000, 4}, {2000, 8}, {50000, 8}, {64, 16},
	} {
		nb := adaptivePanelNB(tc.nm, tc.workers)
		if nb < 96 || nb > 128 {
			t.Errorf("adaptivePanelNB(%d,%d)=%d outside [96,128]", tc.nm, tc.workers, nb)
		}
	}
}

func TestSecularPanelNBCoversK(t *testing.T) {
	for _, tc := range []struct{ nm, k, workers int }{
		{2000, 2000, 4}, {2000, 1500, 8}, {2000, 37, 4}, {500, 1, 2}, {4096, 4096, 1},
	} {
		subNB := adaptivePanelNB(tc.nm, tc.workers)
		npanels := (tc.nm + subNB - 1) / subNB
		nb := secularPanelNB(tc.k, npanels, tc.workers)
		if nb*npanels < tc.k {
			t.Errorf("nm=%d k=%d W=%d: nbSec=%d × %d panels < k", tc.nm, tc.k, tc.workers, nb, npanels)
		}
	}
	if nb := secularPanelNB(0, 4, 4); nb != 0 {
		t.Errorf("secularPanelNB(0,...)=%d, want 0", nb)
	}
	// Large post-deflation k must trigger the cache cap: a 2000-row panel is
	// capped near 2MiB/(8·2000) = 131 columns even on one worker, where the
	// parallelism target alone would ask for 500-wide panels.
	if nb := secularPanelNB(2000, 16, 1); nb > 160 {
		t.Errorf("secularPanelNB(2000,16,1)=%d, want cache-capped (<=160)", nb)
	}
}

// TestSolveDCAdaptivePanels solves with PanelSize=0 (adaptive) and checks
// accuracy plus that every merge recorded a positive chosen nb.
func TestSolveDCAdaptivePanels(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 400
	d0, e0 := randTridiag(rng, n)
	for _, workers := range []int{1, 4} {
		d := append([]float64(nil), d0...)
		e := append([]float64(nil), e0...)
		q := make([]float64, n*n)
		res, err := SolveDC(n, d, e, q, n, &Options{Workers: workers, MinPartition: 40})
		if err != nil {
			t.Fatal(err)
		}
		rres, orth := residualAndOrth(n, d0, e0, d, q, n)
		if rres > 1e-12 || orth > 1e-13 {
			t.Errorf("W=%d adaptive accuracy: res=%v orth=%v", workers, rres, orth)
		}
		if len(res.Stats.Merges) == 0 {
			t.Fatalf("W=%d: no merges recorded", workers)
		}
		for _, m := range res.Stats.Merges {
			if m.K > 0 && m.NB <= 0 {
				t.Errorf("W=%d merge (lvl=%d n=%d k=%d): adaptive NB=%d not recorded", workers, m.Level, m.N, m.K, m.NB)
			}
		}
	}
}

// TestSolveDCTaskTimes checks that the per-task-kind wall-time observer
// records time for the kernel classes a task-flow solve must execute.
func TestSolveDCTaskTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 300
	d0, e0 := randTridiag(rng, n)
	d := append([]float64(nil), d0...)
	e := append([]float64(nil), e0...)
	q := make([]float64, n*n)
	res, err := SolveDC(n, d, e, q, n, &Options{Workers: 2, MinPartition: 32, PanelSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	times := res.Stats.TaskTimes()
	for _, class := range []string{"STEDC", "ComputeDeflation", "LAED4", "UpdateVect"} {
		if times[class] <= 0 {
			t.Errorf("TaskTimes[%q]=%v, want > 0 (got %v)", class, times[class], times)
		}
	}
}
