package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// taskClasses is every kernel class the solver submits. Pre-seeding the
// per-class wall-time counters for all of them keeps the hot-path observer
// (one atomic add per executed task) free of map writes and locks.
var taskClasses = []string{
	"LASET", "Scale", "STEDC", "Barrier", "SortEigenvectors",
	"ComputeDeflation", "Redistribute", "PermuteV", "LAED4", "ComputeLocalW",
	"ReduceW", "CopyBackDeflated", "ComputeVect", "PackV", "UpdateVect",
	"Dlamrg", "UpdateZ", "SortEigenvalues",
}

// Stats aggregates per-kernel operation counts, wall times and per-merge
// deflation data, feeding the paper's cost-model experiments (Table I, Eq. 8).
type Stats struct {
	mu     sync.Mutex
	Ops    map[string]int64 // approximate element operations per kernel class
	Tasks  map[string]int64 // executed task count per kernel class
	Merges []MergeStat

	taskNanos   map[string]*atomic.Int64 // summed kernel wall time per class
	otherNano   atomic.Int64             // classes not in taskClasses (defensive)
	leaked      atomic.Int64             // pooled bytes abandoned by failed merges
	abftRetries atomic.Int64             // kernels re-executed to heal detected SDC
}

// MergeStat describes one merge: its tree level, size, secular size
// (n - k eigenpairs were deflated), the secular panel width nb the
// scheduler used for it (the adaptive choice when Options.PanelSize == 0),
// and the measured trace defect of the merged spectrum — how far Σd drifted
// from the trace-preservation invariant (recorded by the Dlamrg join when
// ABFT is enabled; ~1e-16·‖d‖ on a clean merge, and the quantity whose
// tolerance breach classifies the merge as silently corrupted).
type MergeStat struct {
	Level       int
	N           int
	K           int
	NB          int
	TraceDefect float64
}

func newStats() *Stats {
	s := &Stats{Ops: make(map[string]int64), Tasks: make(map[string]int64)}
	s.taskNanos = make(map[string]*atomic.Int64, len(taskClasses))
	for _, c := range taskClasses {
		s.taskNanos[c] = new(atomic.Int64)
	}
	return s
}

func (s *Stats) count(class string, ops int64) {
	s.mu.Lock()
	s.Ops[class] += ops
	s.Tasks[class]++
	s.mu.Unlock()
}

// addTaskTime is the quark.WithTaskTimer observer: one atomic add per
// executed task, no locks (the map is read-only after newStats).
func (s *Stats) addTaskTime(class string, d time.Duration) {
	if c, ok := s.taskNanos[class]; ok {
		c.Add(int64(d))
		return
	}
	s.otherNano.Add(int64(d))
}

// TaskTimes returns the summed kernel wall time per task class (only classes
// that actually ran). Times sum across workers, so the total can exceed the
// solve's wall time on multi-worker runs. Empty for solves that did not go
// through the task runtime.
func (s *Stats) TaskTimes() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for c, n := range s.taskNanos {
		if v := n.Load(); v > 0 {
			out[c] = time.Duration(v)
		}
	}
	if v := s.otherNano.Load(); v > 0 {
		out["other"] = time.Duration(v)
	}
	return out
}

// addLeaked records pooled workspace bytes that failed or cancelled merges
// abandoned to the GC (their release chain was skipped, so recycling would
// have risked handing out live data). The bytes have already been written
// off the pool accountant via pool.Forget.
func (s *Stats) addLeaked(bytes int64) {
	if bytes > 0 {
		s.leaked.Add(bytes)
	}
}

// LeakedBytes returns the pooled workspace bytes this solve leaked to the GC
// through failed or cancelled merges. Zero on every clean solve; nonzero
// values mean the solve paid a one-off GC cost instead of recycling.
func (s *Stats) LeakedBytes() int64 { return s.leaked.Load() }

// recordMerge appends one merge record and returns its index, so the merge's
// later join tasks (Dlamrg's trace check) can fill in fields computed after
// the deflation scan.
func (s *Stats) recordMerge(level, n, k, nb int) int {
	s.mu.Lock()
	idx := len(s.Merges)
	s.Merges = append(s.Merges, MergeStat{Level: level, N: n, K: k, NB: nb})
	s.mu.Unlock()
	return idx
}

func (s *Stats) setMergeTraceDefect(idx int, defect float64) {
	s.mu.Lock()
	if idx >= 0 && idx < len(s.Merges) {
		s.Merges[idx].TraceDefect = defect
	}
	s.mu.Unlock()
}

// setABFTRetries records how many kernels the runtime re-executed in place
// under the corruption-retry policy (harvested once, after the runtime stops).
func (s *Stats) setABFTRetries(n int64) { s.abftRetries.Store(n) }

// ABFTStats summarizes a solve's silent-corruption defenses: how many checks
// ran, how many detections they produced, and how many kernels were healed by
// in-place re-execution. On a clean solve only Checksums and Invariants are
// nonzero.
type ABFTStats struct {
	// Checksums is the number of packed-GEMM outputs verified against their
	// operand checksum rows (UpdateVect panels through PackVChecked operands).
	Checksums int64
	// Invariants is the number of merge-invariant checks that ran: one trace
	// check per merge plus one interlacing sweep per secular panel.
	Invariants int64
	// ChecksumFailures and InvariantFailures count detections (each one either
	// healed by a task retry or escalated as a corruption error).
	ChecksumFailures  int64
	InvariantFailures int64
	// Retries is how many kernels were re-executed in place to heal a
	// detected corruption.
	Retries int64
	// MaxTraceDefect is the largest per-merge trace defect observed (see
	// MergeStat.TraceDefect).
	MaxTraceDefect float64
}

// ABFT returns the solve's silent-corruption defense counters. All zeros for
// solves run with Options.DisableABFT or outside the task-flow modes.
func (s *Stats) ABFT() ABFTStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := ABFTStats{
		Checksums:         s.Ops["ABFTChecksum"],
		Invariants:        s.Ops["ABFTInvariant"],
		ChecksumFailures:  s.Ops["ABFTChecksumFail"],
		InvariantFailures: s.Ops["ABFTInvariantFail"],
		Retries:           s.abftRetries.Load(),
	}
	for _, m := range s.Merges {
		if m.TraceDefect > a.MaxTraceDefect {
			a.MaxTraceDefect = m.TraceDefect
		}
	}
	return a
}

// Fallbacks returns how many numerical-fallback rescues the solve recorded:
// secular roots recomputed by the bisection safeguard ("LAED4Bisect" ops)
// plus leaf QR solves retried via Dsterf + inverse iteration
// ("STEDCFallback" ops). Zero on the clean fast path.
func (s *Stats) Fallbacks() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Ops["LAED4Bisect"] + s.Ops["STEDCFallback"]
}

// PackReuse reports the UpdateVect packed-operand reuse of the solve: how
// many panel GEMMs went through a pre-packed operand (hits) versus the plain
// per-call path (misses), and the total bytes of packed panels built by the
// PackV tasks. The reuse rate is hits/(hits+misses), 0 when no GEMMs ran.
func (s *Stats) PackReuse() (hits, misses, packedBytes int64, rate float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	hits = s.Ops["UpdateVectPackHit"]
	misses = s.Ops["UpdateVectPackMiss"]
	packedBytes = s.Ops["PackV"]
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	return hits, misses, packedBytes, rate
}

// DeflationRatio returns the fraction of eigenvalues deflated across all
// merges (0 = nothing deflated, 1 = everything deflated).
func (s *Stats) DeflationRatio() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var tot, defl int
	for _, m := range s.Merges {
		tot += m.N
		defl += m.N - m.K
	}
	if tot == 0 {
		return 0
	}
	return float64(defl) / float64(tot)
}

// OpsPerLevel sums UpdateVect operations per tree level, the dominant cubic
// term of Eq. 8 (the last merge should dominate).
func (s *Stats) OpsPerLevel() map[int]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]int64)
	for _, m := range s.Merges {
		// 2*n*k² flops for the two compressed GEMMs of one merge.
		out[m.Level] += 2 * int64(m.N) * int64(m.K) * int64(m.K)
	}
	return out
}

// String formats the statistics as a small report.
func (s *Stats) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	classes := make([]string, 0, len(s.Ops))
	for c := range s.Ops {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	times := s.TaskTimes()
	fmt.Fprintf(&b, "%-20s %10s %14s %12s\n", "kernel", "tasks", "ops", "time")
	for _, c := range classes {
		tm := "-"
		if t, ok := times[c]; ok {
			tm = t.Round(time.Microsecond).String()
		}
		fmt.Fprintf(&b, "%-20s %10d %14d %12s\n", c, s.Tasks[c], s.Ops[c], tm)
	}
	return b.String()
}
