package mrrr

import (
	"math"

	"tridiag/internal/lapack"
)

// steinGroup computes eigenvectors for a group of (possibly pathologically
// clustered) eigenvalues by inverse iteration on the tridiagonal (d, e),
// reorthogonalizing within the group (LAPACK DSTEIN's role: the fallback
// path when the representation tree cannot separate a cluster).
func steinGroup(n int, d, e []float64, lams []float64, cols [][]float64) {
	eps := lapack.Eps
	nrmT := lapack.Dlanst('M', n, d, e)
	if nrmT == 0 {
		nrmT = 1
	}
	sep := eps * nrmT
	prev := make([][]float64, 0, len(cols))
	for gi, lam := range lams {
		// Perturb repeated eigenvalues slightly so the factorizations differ.
		pert := lam + float64(gi)*2*sep
		x := cols[gi]
		// Deterministic pseudo-random start vector (LAPACK uses dlarnv).
		seed := uint64(gi*2654435761 + 12345)
		for i := 0; i < n; i++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			x[i] = float64(int64(seed>>11))/float64(1<<52) - 1
		}
		for iter := 0; iter < 6; iter++ {
			solveShifted(n, d, e, pert, x)
			// Orthogonalize against previously computed group vectors.
			for _, p := range prev {
				var dot float64
				for i := 0; i < n; i++ {
					dot += p[i] * x[i]
				}
				for i := 0; i < n; i++ {
					x[i] -= dot * p[i]
				}
			}
			nrm := 0.0
			for _, v := range x[:n] {
				nrm += v * v
			}
			nrm = math.Sqrt(nrm)
			if nrm == 0 {
				// restart with a shifted seed
				for i := 0; i < n; i++ {
					seed = seed*6364136223846793005 + 1442695040888963407
					x[i] = float64(int64(seed>>11))/float64(1<<52) - 1
				}
				continue
			}
			grown := nrm > 1/(eps*float64(n)*10)
			for i := 0; i < n; i++ {
				x[i] /= nrm
			}
			if grown && iter >= 1 {
				break
			}
		}
		prev = append(prev, x)
	}
}

// solveShifted solves (T - lam*I) y = x in place by Gaussian elimination
// with partial pivoting on the tridiagonal (DGTSV-style), perturbing zero
// pivots.
func solveShifted(n int, d, e []float64, lam float64, x []float64) {
	if n == 1 {
		p := d[0] - lam
		if p == 0 {
			p = lapack.SafeMin
		}
		x[0] /= p
		return
	}
	// Working copies of the three diagonals plus the fill-in band.
	dl := make([]float64, n-1)
	dd := make([]float64, n)
	du := make([]float64, n-1)
	du2 := make([]float64, n-2)
	for i := 0; i < n; i++ {
		dd[i] = d[i] - lam
	}
	copy(dl, e[:n-1])
	copy(du, e[:n-1])

	small := lapack.SafeMin / lapack.Eps
	for i := 0; i < n-1; i++ {
		if math.Abs(dd[i]) >= math.Abs(dl[i]) {
			// No row interchange.
			if math.Abs(dd[i]) < small {
				dd[i] = math.Copysign(small, dd[i])
				if dd[i] == 0 {
					dd[i] = small
				}
			}
			f := dl[i] / dd[i]
			dd[i+1] -= f * du[i]
			x[i+1] -= f * x[i]
			if i < n-2 {
				du2[i] = 0
			}
		} else {
			// Swap rows i and i+1.
			f := dd[i] / dl[i]
			dd[i] = dl[i]
			t := dd[i+1]
			dd[i+1] = du[i] - f*t
			if i < n-2 {
				du2[i] = du[i+1]
				du[i+1] = -f * du[i+1]
			}
			du[i] = t
			x[i], x[i+1] = x[i+1], x[i]-f*x[i+1]
		}
	}
	if math.Abs(dd[n-1]) < small {
		dd[n-1] = math.Copysign(small, dd[n-1])
		if dd[n-1] == 0 {
			dd[n-1] = small
		}
	}
	// Back substitution.
	x[n-1] /= dd[n-1]
	if n > 1 {
		x[n-2] = (x[n-2] - du[n-2]*x[n-1]) / dd[n-2]
	}
	for i := n - 3; i >= 0; i-- {
		x[i] = (x[i] - du[i]*x[i+1] - du2[i]*x[i+2]) / dd[i]
	}
}
