package mrrr

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"tridiag/internal/lapack"
)

// Options tunes the MRRR solver.
type Options struct {
	// Workers bounds the number of concurrently processed subtrees /
	// eigenvalue chunks (<=0: 1). The parallelization mirrors MR³-SMP:
	// independent representation-tree nodes and eigenvector computations
	// are tasks over a bounded pool.
	Workers int
	// MinRelGap is the relative gap below which eigenvalues are considered
	// clustered (MR³'s minrgp, default 1e-3).
	MinRelGap float64
	// MaxDepth bounds the representation tree depth before falling back to
	// inverse iteration (default 10).
	MaxDepth int
}

func (o *Options) withDefaults() Options {
	var v Options
	if o != nil {
		v = *o
	}
	if v.Workers < 1 {
		v.Workers = 1
	}
	if v.MinRelGap <= 0 {
		v.MinRelGap = 1e-3
	}
	if v.MaxDepth < 1 {
		v.MaxDepth = 10
	}
	return v
}

// pool runs closures on at most cap workers; recursive submission degrades
// to inline execution, so bounded recursion cannot deadlock.
type pool struct {
	sem chan struct{}
	wg  sync.WaitGroup
}

func newPool(workers int) *pool { return &pool{sem: make(chan struct{}, workers)} }

func (p *pool) do(f func()) {
	select {
	case p.sem <- struct{}{}:
		p.wg.Add(1)
		go func() {
			defer func() { <-p.sem; p.wg.Done() }()
			f()
		}()
	default:
		f()
	}
}

func (p *pool) wait() { p.wg.Wait() }

// Solve computes all eigenvalues and eigenvectors of the symmetric
// tridiagonal matrix (d, e) by the MRRR algorithm: on exit w holds the
// ascending eigenvalues and z (n×n, leading dimension ldz) the
// corresponding eigenvectors. d and e are not modified.
func Solve(n int, d, e []float64, w []float64, z []float64, ldz int, opts *Options) error {
	o := opts.withDefaults()
	if n < 0 {
		return fmt.Errorf("mrrr: negative n")
	}
	if n == 0 {
		return nil
	}
	if ldz < n {
		return fmt.Errorf("mrrr: ldz=%d < n=%d", ldz, n)
	}
	for j := 0; j < n; j++ {
		col := z[j*ldz : j*ldz+n]
		for i := range col {
			col[i] = 0
		}
	}

	// Split into unreduced blocks at negligible off-diagonals.
	type block struct{ start, size int }
	var blocks []block
	bs := 0
	for i := 0; i < n-1; i++ {
		if math.Abs(e[i]) <= lapack.Eps*(math.Sqrt(math.Abs(d[i]))*math.Sqrt(math.Abs(d[i+1]))) {
			blocks = append(blocks, block{bs, i + 1 - bs})
			bs = i + 1
		}
	}
	blocks = append(blocks, block{bs, n - bs})

	p := newPool(o.Workers)
	var mu sync.Mutex
	var firstErr error
	for _, b := range blocks {
		b := b
		p.do(func() {
			err := solveBlock(b.size, d[b.start:b.start+b.size], e[b.start:], w[b.start:b.start+b.size],
				z[b.start+b.start*ldz:], ldz, &o, p)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("block [%d,%d): %w", b.start, b.start+b.size, err)
				}
				mu.Unlock()
			}
		})
	}
	p.wait()
	if firstErr != nil {
		return firstErr
	}

	// Merge the blocks into globally ascending order.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return w[idx[a]] < w[idx[b]] })
	wt := make([]float64, n)
	zt := make([]float64, n*n)
	for i, j := range idx {
		wt[i] = w[j]
		copy(zt[i*n:i*n+n], z[j*ldz:j*ldz+n])
	}
	copy(w, wt)
	for i := 0; i < n; i++ {
		copy(z[i*ldz:i*ldz+n], zt[i*n:i*n+n])
	}
	return nil
}

// repNode is one node of the representation tree: an LDLᵀ factorization of
// T - sigma*I, valid for a contiguous group of eigenvalue indices.
type repNode struct {
	dd, ll []float64
	sigma  float64 // accumulated shift relative to the original block
}

// qrFallback lazily computes one full QR eigendecomposition of a block,
// shared by every pathological cluster that needs the robust fallback.
type qrFallback struct {
	once sync.Once
	n    int
	d, e []float64
	lam  []float64
	q    []float64
	err  error
}

func (f *qrFallback) get() ([]float64, []float64, error) {
	f.once.Do(func() {
		f.lam = append([]float64(nil), f.d[:f.n]...)
		ee := append([]float64(nil), f.e[:max(f.n-1, 0)]...)
		f.q = make([]float64, f.n*f.n)
		f.err = lapack.Dsteqr(lapack.CompIdentity, f.n, f.lam, ee, f.q, f.n)
	})
	return f.lam, f.q, f.err
}

func solveBlock(n int, d, e []float64, w []float64, z []float64, ldz int, o *Options, p *pool) error {
	if n == 1 {
		w[0] = d[0]
		z[0] = 1
		return nil
	}
	gl, gu := gerschgorin(n, d, e)
	spdiam := gu - gl
	pmin := pivmin(n, e)
	atol := 2 * lapack.Ulp * math.Max(math.Abs(gl), math.Abs(gu))

	// Root representation: T - sigma*I positive definite, sigma just below
	// the spectrum.
	sigma := gl - spdiam*1e-3
	dd := make([]float64, n)
	ll := make([]float64, n-1)
	ok := false
	for try := 0; try < 8; try++ {
		if factorLDL(n, d, e, sigma, dd, ll) && allPositive(dd) {
			ok = true
			break
		}
		sigma -= spdiam * (1e-3 * float64(try+1))
	}
	if !ok {
		return fmt.Errorf("mrrr: could not form a positive definite root representation")
	}
	root := &repNode{dd: dd, ll: ll, sigma: sigma}

	// Eigenvalues of the root representation by dqds (LAPACK DLASQ's role in
	// DSTEMR): fast and accurate to high relative precision, so no bisection
	// refinement is needed before clustering. Falls back to bisection if the
	// qd iteration fails.
	lam := make([]float64, n)
	if err := rootEigenDqds(n, root, lam); err != nil {
		atolInit := math.Max(spdiam*1e-6, atol)
		countT := func(x float64) int { return negcountT(n, d, e, x, pmin) }
		countRoot := func(x float64) int { return negcountLDL(n, root.dd, root.ll, x, pmin) }
		h0 := 2*atolInit + spdiam*8*lapack.Eps
		chunk := max(1, n/(4*o.Workers))
		var wg sync.WaitGroup
		for c0 := 0; c0 < n; c0 += chunk {
			c0 := c0
			c1 := min(c0+chunk, n)
			wg.Add(1)
			p.do(func() {
				defer wg.Done()
				for i := c0; i < c1; i++ {
					x := bisectEig(i, gl, gu, atolInit, 1e-8, countT) - sigma
					lam[i] = refineEig(i, x, h0, atol/4, 8*lapack.Eps, countRoot)
				}
			})
		}
		wg.Wait()
	}

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// The dqds eigenvalues are already accurate relative to the root
	// representation, so root-level singletons skip re-refinement.
	fb := &qrFallback{n: n, d: d, e: e}
	return processNode(n, d, e, root, idx, lam, w, z, ldz, o, p, 0, spdiam, pmin, false, fb)
}

// allPositive reports whether every entry is strictly positive.
func allPositive(v []float64) bool {
	for _, x := range v {
		if x <= 0 {
			return false
		}
	}
	return true
}

// rootEigenDqds computes all eigenvalues of the positive definite root
// representation L·D·Lᵀ via the dqds algorithm on its qd arrays
// (q_i = d_i, e_i = l_i²·d_i).
func rootEigenDqds(n int, root *repNode, lam []float64) error {
	q := make([]float64, n)
	qe := make([]float64, max(n-1, 1))
	copy(q, root.dd)
	for i := 0; i < n-1; i++ {
		qe[i] = root.ll[i] * root.ll[i] * root.dd[i]
	}
	if err := lapack.DqdsEigen(n, q, qe); err != nil {
		return err
	}
	copy(lam, q)
	return nil
}

// refineEig brackets eigenvalue j around x0 (radius h0) and bisects it.
func refineEig(j int, x0, h0, atol, rtol float64, count func(float64) int) float64 {
	lo, hi := x0-h0, x0+h0
	for iter := 0; iter < 60 && count(lo) > j; iter++ {
		lo -= hi - lo
	}
	for iter := 0; iter < 60 && count(hi) < j+1; iter++ {
		hi += hi - lo
	}
	return bisectEig(j, lo, hi, atol, rtol, count)
}

// processNode classifies the node's eigenvalues into singletons and clusters
// by relative gaps, emits eigenvectors for singletons and recurses through a
// new shifted representation for each cluster.
func processNode(n int, d, e []float64, rep *repNode, idx []int, lam []float64,
	w []float64, z []float64, ldz int, o *Options, p *pool, depth int, spdiam, pmin float64, needRefine bool, fb *qrFallback) error {

	m := len(idx)
	count := func(x float64) int { return negcountLDL(n, rep.dd, rep.ll, x, pmin) }

	// Group by relative gaps.
	groups := make([][2]int, 0, m) // [start, end) into idx/lam
	gs := 0
	for i := 0; i < m-1; i++ {
		gap := lam[i+1] - lam[i]
		scale := math.Max(math.Abs(lam[i]), math.Abs(lam[i+1]))
		scale = math.Max(scale, spdiam*lapack.Eps)
		if gap >= o.MinRelGap*scale {
			groups = append(groups, [2]int{gs, i + 1})
			gs = i + 1
		}
	}
	groups = append(groups, [2]int{gs, m})

	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	for _, g := range groups {
		g := g
		size := g[1] - g[0]
		if size == 1 {
			i := g[0]
			bj := idx[i] // index within the block
			x0 := lam[i]
			wg.Add(1)
			p.do(func() {
				defer wg.Done()
				// Compute the vector; when the value still needs polishing
				// (it did not come from dqds on this representation), use
				// Rayleigh quotient iteration through the twisted
				// factorization (cubic convergence), with a bisection
				// safeguard if RQI wanders.
				zc := z[bj*ldz : bj*ldz+n]
				lx := x0
				if needRefine {
					guard := math.Max(1e-2*math.Abs(x0), 1e6*pmin)
					done := false
					for it := 0; it < 6; it++ {
						delta := getvec(n, rep.dd, rep.ll, lx, zc, pmin)
						if math.Abs(delta) <= 4*lapack.Eps*math.Abs(lx)+2*pmin {
							done = true
							break
						}
						cand := lx + delta
						if math.Abs(cand-x0) > guard {
							break // diverging towards a neighbour
						}
						lx = cand
					}
					if !done {
						lx = refineEig(bj, x0, math.Max(math.Abs(x0)*1e-6, pmin), 0, 4*lapack.Eps, count)
						getvec(n, rep.dd, rep.ll, lx, zc, pmin)
					}
				} else {
					getvec(n, rep.dd, rep.ll, lx, zc, pmin)
				}
				w[bj] = lx + rep.sigma
			})
			continue
		}

		// Cluster: build a child representation with a shift near the
		// cluster boundary to open up relative gaps.
		lams := lam[g[0]:g[1]]
		ids := idx[g[0]:g[1]]
		if depth >= o.MaxDepth {
			steinFallback(n, d, e, rep.sigma, lams, ids, w, z, ldz, fb)
			continue
		}
		if depth >= 2 && size > 32 {
			// A large cluster that has survived two levels of shifted
			// representations is pathologically degenerate; peeling it
			// level by level costs more bisection work than one robust QR
			// solve of the block (computed once and cached).
			steinFallback(n, d, e, rep.sigma, lams, ids, w, z, ldz, fb)
			continue
		}
		cw := lams[len(lams)-1] - lams[0]
		// The shift candidates step away from the cluster edge in units of
		// the average in-cluster gap; flooring only by pivmin (not by
		// spdiam·eps) lets the shift land close enough to open relative
		// gaps inside extremely tight clusters.
		gapScale := math.Max(cw/float64(size), 16*pmin)
		dp := make([]float64, n)
		lp := make([]float64, n-1)
		var tau float64
		okShift := false
		for _, f := range []float64{0.25, 0.5, 1, 2, 4, 16, 256} {
			for _, cand := range []float64{lams[0] - f*gapScale, lams[len(lams)-1] + f*gapScale} {
				growth, ok := stqds(n, rep.dd, rep.ll, cand, dp, lp)
				if ok && growth <= 64*math.Max(spdiam, math.Abs(cand)) {
					tau = cand
					okShift = true
					break
				}
			}
			if okShift {
				break
			}
		}
		if !okShift {
			steinFallback(n, d, e, rep.sigma, lams, ids, w, z, ldz, fb)
			continue
		}
		// Break numerically coincident eigenvalues with tiny random relative
		// perturbations of the child representation (LAPACK DLARRE's device
		// for glued/duplicate spectra): without it, exactly repeated
		// eigenvalues have zero relative gaps at every depth and the
		// recursion can never separate them.
		prng := rand.New(rand.NewSource(int64(depth)*1000003 + int64(ids[0])))
		for i := range dp {
			dp[i] *= 1 + 8*lapack.Eps*(prng.Float64()-0.5)
		}
		for i := range lp {
			lp[i] *= 1 + 8*lapack.Eps*(prng.Float64()-0.5)
		}
		child := &repNode{dd: append([]float64(nil), dp...), ll: append([]float64(nil), lp...), sigma: rep.sigma + tau}
		childCount := func(x float64) int { return negcountLDL(n, child.dd, child.ll, x, pmin) }
		// Moderate-precision bisection suffices here: it only drives the
		// child's gap classification and shift choices; the singleton RQI
		// polish restores full accuracy before the vectors are formed.
		clam := make([]float64, size)
		for i := 0; i < size; i++ {
			x := lams[i] - tau
			clam[i] = refineEig(ids[i], x, math.Max(math.Abs(x)*1e-2, cw+pmin), 0, 1e-6, childCount)
		}
		cid := append([]int(nil), ids...)
		wg.Add(1)
		p.do(func() {
			defer wg.Done()
			if err := processNode(n, d, e, child, cid, clam, w, z, ldz, o, p, depth+1, spdiam, pmin, true, fb); err != nil {
				fail(err)
			}
		})
	}
	wg.Wait()
	return firstErr
}

// steinFallback computes a pathological cluster's eigenpairs outside the
// representation tree. Small clusters use inverse iteration with
// reorthogonalization (DSTEIN's approach); large numerically-degenerate
// clusters — where inverse iteration cannot produce an orthogonal basis —
// fall back to QR iteration on the whole block and extract the cluster's
// columns. This is the robustness gap of MRRR that the paper points out
// ("MRRR ... can fail to provide an accurate solution in some cases");
// the fallback trades the O(n³) QR cost for a correct basis.
func steinFallback(n int, d, e []float64, sigma float64, lams []float64, ids []int,
	w []float64, z []float64, ldz int, fb *qrFallback) {
	stein := func() {
		abs := make([]float64, len(lams))
		cols := make([][]float64, len(lams))
		for i := range lams {
			abs[i] = lams[i] + sigma
			cols[i] = z[ids[i]*ldz : ids[i]*ldz+n]
			w[ids[i]] = abs[i]
		}
		steinGroup(n, d, e, abs, cols)
	}
	if len(ids) <= 8 {
		stein()
		return
	}
	lamQR, q, err := fb.get()
	if err != nil {
		// last resort: inverse iteration, orthogonality best-effort
		stein()
		return
	}
	for _, bj := range ids {
		w[bj] = lamQR[bj]
		copy(z[bj*ldz:bj*ldz+n], q[bj*n:bj*n+n])
	}
}
