package mrrr

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"tridiag/internal/lapack"
)

// SolveRange computes eigenpairs il..iu (0-based, inclusive, ascending
// order) of the symmetric tridiagonal matrix (d, e): the subset capability
// that the paper names as MRRR's main asset over classical D&C ("reducing
// the complexity to Θ(nk) for computing k eigenpairs"). w receives the
// iu-il+1 eigenvalues and z their eigenvectors (n rows per column, leading
// dimension ldz). d and e are not modified.
func SolveRange(n int, d, e []float64, il, iu int, w []float64, z []float64, ldz int, opts *Options) error {
	o := opts.withDefaults()
	if n < 0 {
		return fmt.Errorf("mrrr: negative n")
	}
	if il < 0 || iu >= n || il > iu {
		return fmt.Errorf("mrrr: bad index range [%d, %d] for n=%d", il, iu, n)
	}
	m := iu - il + 1
	if ldz < n {
		return fmt.Errorf("mrrr: ldz=%d < n=%d", ldz, n)
	}
	for j := 0; j < m; j++ {
		col := z[j*ldz : j*ldz+n]
		for i := range col {
			col[i] = 0
		}
	}

	// Split into unreduced blocks; an eigenvalue index maps into exactly one
	// block once the per-block counts are known, so compute every block's
	// eigenvalues cheaply (values only) to locate the requested range.
	type block struct{ start, size int }
	var blocks []block
	bs := 0
	for i := 0; i < n-1; i++ {
		if math.Abs(e[i]) <= lapack.Eps*(math.Sqrt(math.Abs(d[i]))*math.Sqrt(math.Abs(d[i+1]))) {
			blocks = append(blocks, block{bs, i + 1 - bs})
			bs = i + 1
		}
	}
	blocks = append(blocks, block{bs, n - bs})

	// Global eigenvalue values determine which block-local indices fall in
	// [il, iu]. For a single unreduced block (the common case) only the
	// requested indices are bisected, Θ(nk); with multiple blocks, all
	// eigenvalues are located first (Θ(n²) worst case, tiny constants).
	type ev struct {
		blk   int
		local int
		val   float64
	}
	var want []ev
	if len(blocks) == 1 {
		gl, gu := gerschgorin(n, d, e)
		pmin := pivmin(n, e)
		atol := 2 * lapack.Ulp * math.Max(math.Abs(gl), math.Abs(gu))
		count := func(x float64) int { return negcountT(n, d, e, x, pmin) }
		for i := il; i <= iu; i++ {
			want = append(want, ev{0, i, bisectEig(i, gl, gu, atol, 4*lapack.Eps, count)})
		}
	} else {
		all := make([]ev, 0, n)
		for bi, b := range blocks {
			bd, be := d[b.start:b.start+b.size], e[b.start:]
			if b.size == 1 {
				all = append(all, ev{bi, 0, bd[0]})
				continue
			}
			gl, gu := gerschgorin(b.size, bd, be)
			pmin := pivmin(b.size, be)
			atol := 2 * lapack.Ulp * math.Max(math.Abs(gl), math.Abs(gu))
			count := func(x float64) int { return negcountT(b.size, bd, be, x, pmin) }
			for i := 0; i < b.size; i++ {
				all = append(all, ev{bi, i, bisectEig(i, gl, gu, atol, 4*lapack.Eps, count)})
			}
		}
		sort.SliceStable(all, func(a, b int) bool { return all[a].val < all[b].val })
		want = all[il : iu+1]
	}

	// Group the wanted indices per block and run the MRRR machinery on each
	// block restricted to its wanted local indices.
	perBlock := map[int][]int{}
	for _, t := range want {
		perBlock[t.blk] = append(perBlock[t.blk], t.local)
	}
	// output slot per (blk, local)
	slot := map[[2]int]int{}
	for j, t := range want {
		slot[[2]int{t.blk, t.local}] = j
	}

	p := newPool(o.Workers)
	var mu sync.Mutex
	var firstErr error
	for bi, locals := range perBlock {
		b := blocks[bi]
		locals := locals
		bi := bi
		p.do(func() {
			bw := make([]float64, b.size)
			bz := make([]float64, b.size*b.size)
			err := solveBlockSubset(b.size, d[b.start:b.start+b.size], e[b.start:], locals, bw, bz, b.size, &o, p)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			for _, li := range locals {
				j := slot[[2]int{bi, li}]
				w[j] = bw[li]
				copy(z[j*ldz+b.start:j*ldz+b.start+b.size], bz[li*b.size:li*b.size+b.size])
			}
		})
	}
	p.wait()
	return firstErr
}

// solveBlockSubset runs the representation-tree machinery for the wanted
// local indices only. For simplicity the root eigenvalues for ALL indices in
// the smallest enclosing range are refined (cluster membership needs the
// neighbours), but vectors are computed only for wanted singletons/clusters.
func solveBlockSubset(n int, d, e []float64, wanted []int, w []float64, z []float64, ldz int, o *Options, p *pool) error {
	if n == 1 {
		w[0] = d[0]
		z[0] = 1
		return nil
	}
	// The cheapest correct route reuses the full per-block solver when more
	// than half the block is requested.
	if len(wanted)*2 >= n {
		return solveBlock(n, d, e, w, z, ldz, o, p)
	}
	gl, gu := gerschgorin(n, d, e)
	spdiam := gu - gl
	pmin := pivmin(n, e)
	atol := 2 * lapack.Ulp * math.Max(math.Abs(gl), math.Abs(gu))
	atolInit := math.Max(spdiam*1e-6, atol)

	// Only the wanted indices plus enough neighbours to detect clusters:
	// extend the index set by one on each side repeatedly while the
	// neighbour is within the cluster threshold.
	countT := func(x float64) int { return negcountT(n, d, e, x, pmin) }
	lamAt := make(map[int]float64)
	getLam := func(i int) float64 {
		if v, ok := lamAt[i]; ok {
			return v
		}
		v := bisectEig(i, gl, gu, atolInit, 1e-8, countT)
		lamAt[i] = v
		return v
	}
	idxSet := map[int]bool{}
	for _, i := range wanted {
		idxSet[i] = true
	}
	// grow to cluster closure
	for grow := 0; grow < n; grow++ {
		changed := false
		for _, i := range keys(idxSet) {
			for _, j := range []int{i - 1, i + 1} {
				if j < 0 || j >= n || idxSet[j] {
					continue
				}
				gap := math.Abs(getLam(j) - getLam(i))
				scale := math.Max(math.Abs(getLam(i)), math.Abs(getLam(j)))
				scale = math.Max(scale, spdiam*lapack.Eps)
				if gap < o.MinRelGap*scale {
					idxSet[j] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	idx := keys(idxSet)
	sort.Ints(idx)
	if len(idx)*2 >= n {
		return solveBlock(n, d, e, w, z, ldz, o, p)
	}

	// Root representation as in solveBlock.
	sigma := gl - spdiam*1e-3
	dd := make([]float64, n)
	ll := make([]float64, n-1)
	ok := false
	for try := 0; try < 8; try++ {
		if factorLDL(n, d, e, sigma, dd, ll) {
			ok = true
			break
		}
		sigma -= spdiam * (1e-3 * float64(try+1))
	}
	if !ok {
		return fmt.Errorf("mrrr: could not form a root representation")
	}
	root := &repNode{dd: dd, ll: ll, sigma: sigma}
	countRoot := func(x float64) int { return negcountLDL(n, root.dd, root.ll, x, pmin) }
	lam := make([]float64, len(idx))
	h0 := 2*atolInit + spdiam*8*lapack.Eps
	for k, i := range idx {
		lam[k] = refineEig(i, getLam(i)-sigma, h0, atol/4, 8*lapack.Eps, countRoot)
	}
	// These root eigenvalues came from bisection, so singletons still need
	// the final refinement.
	fb := &qrFallback{n: n, d: d, e: e}
	return processNode(n, d, e, root, idx, lam, w, z, ldz, o, p, 0, spdiam, pmin, true, fb)
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
