package mrrr

import (
	"math"
	"math/rand"
	"testing"

	"tridiag/internal/lapack"
)

func residualAndOrth(n int, d0, e0, lam, z []float64, ldz int) (res, orth float64) {
	y := make([]float64, n)
	for j := 0; j < n; j++ {
		v := z[j*ldz : j*ldz+n]
		for i := 0; i < n; i++ {
			s := d0[i] * v[i]
			if i > 0 {
				s += e0[i-1] * v[i-1]
			}
			if i < n-1 {
				s += e0[i] * v[i+1]
			}
			y[i] = s - lam[j]*v[i]
		}
		var nrm float64
		for _, t := range y {
			nrm += t * t
		}
		res = math.Max(res, math.Sqrt(nrm))
	}
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			var s float64
			zi, zj := z[i*ldz:i*ldz+n], z[j*ldz:j*ldz+n]
			for k := 0; k < n; k++ {
				s += zi[k] * zj[k]
			}
			if i == j {
				s -= 1
			}
			orth = math.Max(orth, math.Abs(s))
		}
	}
	return res, orth
}

func checkMRRR(t *testing.T, name string, n int, d0, e0 []float64, tolScale float64) {
	t.Helper()
	w := make([]float64, n)
	z := make([]float64, n*n)
	if err := Solve(n, d0, e0, w, z, n, &Options{Workers: 4}); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for i := 1; i < n; i++ {
		if w[i] < w[i-1] {
			t.Fatalf("%s: eigenvalues not ascending at %d", name, i)
		}
	}
	nrm := lapack.Dlanst('M', n, d0, e0)
	if nrm == 0 {
		nrm = 1
	}
	res, orth := residualAndOrth(n, d0, e0, w, z, n)
	if res/(nrm*float64(n)) > tolScale*lapack.Eps {
		t.Errorf("%s: residual %.3e exceeds %.1f*eps", name, res/(nrm*float64(n)), tolScale)
	}
	if orth/float64(n) > tolScale*lapack.Eps {
		t.Errorf("%s: orthogonality %.3e exceeds %.1f*eps", name, orth/float64(n), tolScale)
	}
	// eigenvalues must agree with QR iteration
	dd := append([]float64(nil), d0...)
	ee := append([]float64(nil), e0...)
	if err := lapack.Dsteqr(lapack.CompNone, n, dd, ee, nil, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(w[i]-dd[i]) > 1e-11*(nrm+1)*float64(n) {
			t.Errorf("%s: eigenvalue %d: mrrr %v qr %v", name, i, w[i], dd[i])
		}
	}
}

func TestMRRRRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for _, n := range []int{1, 2, 3, 5, 20, 60, 150} {
		d := make([]float64, n)
		e := make([]float64, max(n-1, 1))
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		for i := 0; i < n-1; i++ {
			e[i] = rng.NormFloat64()
		}
		checkMRRR(t, "random", n, d, e, 5000)
	}
}

func TestMRRROneTwoOne(t *testing.T) {
	n := 120
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = 1
	}
	checkMRRR(t, "one-two-one", n, d, e, 5000)
}

func TestMRRRWilkinson(t *testing.T) {
	// Tight eigenvalue pairs: exercises the cluster recursion.
	n := 51
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = math.Abs(float64(i - (n-1)/2))
	}
	for i := range e {
		e[i] = 1
	}
	checkMRRR(t, "wilkinson", n, d, e, 20000)
}

func TestMRRRGluedWilkinson(t *testing.T) {
	// Glued Wilkinson: very hard clusters, may hit the stein fallback.
	n := 63
	d := make([]float64, n)
	e := make([]float64, n-1)
	for b := 0; b < 3; b++ {
		for i := 0; i < 21; i++ {
			d[b*21+i] = math.Abs(float64(i - 10))
		}
		for i := 0; i < 20; i++ {
			e[b*21+i] = 1
		}
		if b < 2 {
			e[b*21+20] = 1e-6
		}
	}
	checkMRRR(t, "glued-wilkinson", n, d, e, 2e5)
}

func TestMRRRSplitBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	n := 40
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	e[13] = 0
	e[27] = 0
	checkMRRR(t, "split", n, d, e, 5000)
}

func TestMRRRDiagonal(t *testing.T) {
	n := 10
	d := []float64{5, -3, 2, 0, 7, -1, 4, 1, -6, 3}
	e := make([]float64, n-1)
	checkMRRR(t, "diagonal", n, d, e, 100)
}

func TestMRRRUniformSpectrum(t *testing.T) {
	// Laguerre-type Jacobi matrix: well-separated spectrum, the MRRR
	// fast path (all singletons).
	n := 80
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := 0; i < n; i++ {
		d[i] = float64(2*i + 1)
	}
	for i := 1; i < n; i++ {
		e[i-1] = float64(i)
	}
	checkMRRR(t, "laguerre", n, d, e, 5000)
}

func TestNegcountMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	n := 30
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	gl, gu := gerschgorin(n, d, e)
	pmin := pivmin(n, e)
	prev := 0
	for i := 0; i <= 50; i++ {
		x := gl + (gu-gl)*float64(i)/50
		c := negcountT(n, d, e, x, pmin)
		if c < prev {
			t.Fatalf("negcountT not monotone at %v: %d < %d", x, c, prev)
		}
		prev = c
	}
	if c := negcountT(n, d, e, gu, pmin); c != n {
		t.Errorf("count at upper bound: %d", c)
	}
	if c := negcountT(n, d, e, gl, pmin); c != 0 {
		t.Errorf("count at lower bound: %d", c)
	}
}

func TestNegcountLDLMatchesT(t *testing.T) {
	rng := rand.New(rand.NewSource(213))
	n := 25
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = rng.NormFloat64() + 3 // make T - sigma I definite for sigma=-10
	}
	for i := range e {
		e[i] = rng.NormFloat64() * 0.3
	}
	sigma := -10.0
	dd := make([]float64, n)
	ll := make([]float64, n-1)
	if !factorLDL(n, d, e, sigma, dd, ll) {
		t.Fatal("factorization failed")
	}
	pmin := pivmin(n, e)
	for _, x := range []float64{-5, 0, 2, 3.5, 8, 20} {
		cT := negcountT(n, d, e, x, pmin)
		cL := negcountLDL(n, dd, ll, x-sigma, pmin)
		if cT != cL {
			t.Errorf("counts differ at %v: T=%d LDL=%d", x, cT, cL)
		}
	}
}

func TestGetvecResidual(t *testing.T) {
	// Eigenvector from the twisted factorization must satisfy
	// (L D Lᵀ) z = lam z.
	rng := rand.New(rand.NewSource(217))
	n := 30
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = rng.NormFloat64() + 4
	}
	for i := range e {
		e[i] = rng.NormFloat64() * 0.5
	}
	dd := make([]float64, n)
	ll := make([]float64, n-1)
	if !factorLDL(n, d, e, 0, dd, ll) {
		t.Fatal("factor")
	}
	// exact eigenvalues of T
	dc := append([]float64(nil), d...)
	ec := append([]float64(nil), e...)
	if err := lapack.Dsteqr(lapack.CompNone, n, dc, ec, nil, 0); err != nil {
		t.Fatal(err)
	}
	z := make([]float64, n)
	pmin := pivmin(n, e)
	for _, j := range []int{0, n / 2, n - 1} {
		getvec(n, dd, ll, dc[j], z, pmin)
		worst := 0.0
		for i := 0; i < n; i++ {
			s := d[i] * z[i]
			if i > 0 {
				s += e[i-1] * z[i-1]
			}
			if i < n-1 {
				s += e[i] * z[i+1]
			}
			worst = math.Max(worst, math.Abs(s-dc[j]*z[i]))
		}
		if worst > 1e-12*(math.Abs(dc[j])+1)*float64(n) {
			t.Errorf("eigenvector %d residual %.3e", j, worst)
		}
	}
}

func TestMRRRScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(219))
	n := 40
	for _, scale := range []float64{1e-8, 1e8} {
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = rng.NormFloat64() * scale
		}
		for i := range e {
			e[i] = rng.NormFloat64() * scale
		}
		checkMRRR(t, "scaled", n, d, e, 10000)
	}
}

func TestMRRRInvalidArgs(t *testing.T) {
	if err := Solve(-1, nil, nil, nil, nil, 0, nil); err == nil {
		t.Error("negative n")
	}
	if err := Solve(5, make([]float64, 5), make([]float64, 4), make([]float64, 5), make([]float64, 25), 3, nil); err == nil {
		t.Error("ldz < n")
	}
	if err := Solve(0, nil, nil, nil, nil, 0, nil); err != nil {
		t.Error("n=0 should succeed")
	}
}
