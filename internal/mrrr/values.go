package mrrr

import (
	"math"
	"sort"

	"tridiag/internal/lapack"
)

// ValuesRange computes eigenvalues il..iu (0-based, inclusive, ascending) of
// the symmetric tridiagonal (d, e) by Sturm-count bisection to full
// precision (DSTEBZ's role). d and e are not modified.
func ValuesRange(n int, d, e []float64, il, iu int) ([]float64, error) {
	// Split into unreduced blocks, bisect every block's spectrum lazily, and
	// select globally. For a modest range this is Θ(n · k · log(1/ε)).
	type block struct{ start, size int }
	var blocks []block
	bs := 0
	for i := 0; i < n-1; i++ {
		if math.Abs(e[i]) <= lapack.Eps*(math.Sqrt(math.Abs(d[i]))*math.Sqrt(math.Abs(d[i+1]))) {
			blocks = append(blocks, block{bs, i + 1 - bs})
			bs = i + 1
		}
	}
	blocks = append(blocks, block{bs, n - bs})

	all := make([]float64, 0, n)
	for _, b := range blocks {
		bd, be := d[b.start:b.start+b.size], e[b.start:]
		if b.size == 1 {
			all = append(all, bd[0])
			continue
		}
		gl, gu := gerschgorin(b.size, bd, be)
		pmin := pivmin(b.size, be)
		atol := 2 * lapack.Ulp * math.Max(math.Abs(gl), math.Abs(gu))
		count := func(x float64) int { return negcountT(b.size, bd, be, x, pmin) }
		for i := 0; i < b.size; i++ {
			all = append(all, bisectEig(i, gl, gu, atol, 4*lapack.Eps, count))
		}
	}
	sort.Float64s(all)
	out := make([]float64, iu-il+1)
	copy(out, all[il:iu+1])
	return out, nil
}
