// Package mrrr implements the Multiple Relatively Robust Representations
// eigensolver for symmetric tridiagonal matrices (Dhillon's algorithm), the
// paper's main comparator (the MR³-SMP proxy of Figures 8–10). Eigenvalues
// come from Sturm-count bisection; eigenvectors from twisted factorizations
// of shifted LDLᵀ representations, with cluster recursion through
// differential stationary qds transforms and an inverse-iteration fallback.
package mrrr

import (
	"math"

	"tridiag/internal/lapack"
)

// gerschgorin returns an enclosing interval [gl, gu] for all eigenvalues.
func gerschgorin(n int, d, e []float64) (gl, gu float64) {
	gl, gu = d[0], d[0]
	for i := 0; i < n; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(e[i-1])
		}
		if i < n-1 {
			r += math.Abs(e[i])
		}
		gl = math.Min(gl, d[i]-r)
		gu = math.Max(gu, d[i]+r)
	}
	// widen slightly so strict inequalities hold at the ends
	w := math.Max(gu-gl, math.Abs(gl)+math.Abs(gu))
	gl -= 2 * lapack.Ulp * w
	gu += 2 * lapack.Ulp * w
	return gl, gu
}

// pivmin returns the minimum acceptable pivot magnitude for Sturm counts.
func pivmin(n int, e []float64) float64 {
	mx := lapack.SafeMin
	for i := 0; i < n-1; i++ {
		if v := e[i] * e[i] * lapack.SafeMin; v > mx {
			mx = v
		}
	}
	return mx
}

// negcountT returns the number of eigenvalues of the tridiagonal (d, e)
// strictly less than x (Sturm count via the LDLᵀ recurrence on T - xI).
func negcountT(n int, d, e []float64, x, pmin float64) int {
	count := 0
	t := d[0] - x
	if t <= 0 {
		if t < 0 {
			count++
		}
		if t > -pmin && t < pmin {
			t = -pmin
		}
	}
	for i := 1; i < n; i++ {
		if math.Abs(t) < pmin {
			t = -pmin
		}
		t = d[i] - x - e[i-1]*e[i-1]/t
		if t < 0 {
			count++
		}
	}
	return count
}

// negcountLDL returns the number of eigenvalues of L D Lᵀ strictly less than
// x, computed by the differential stationary qds transform.
func negcountLDL(n int, dd, ll []float64, x, pmin float64) int {
	count := 0
	s := -x
	for i := 0; i < n-1; i++ {
		dplus := dd[i] + s
		if dplus < 0 {
			count++
		}
		if math.Abs(dplus) < pmin {
			dplus = -pmin
		}
		s = s*(dd[i]*ll[i]/dplus)*ll[i] - x
		if math.IsNaN(s) {
			// restart non-differentially from here (rare)
			s = -x
		}
	}
	if dd[n-1]+s < 0 {
		count++
	}
	return count
}

// bisectEig finds eigenvalue index i (0-based, ascending) of the operator
// described by count (a monotone negcount function) within [lo, hi], to
// absolute tolerance atol and relative tolerance rtol.
func bisectEig(i int, lo, hi, atol, rtol float64, count func(x float64) int) float64 {
	for iter := 0; iter < 120; iter++ {
		mid := 0.5 * (lo + hi)
		if mid == lo || mid == hi {
			break
		}
		if count(mid) >= i+1 {
			hi = mid
		} else {
			lo = mid
		}
		if hi-lo <= atol+rtol*math.Max(math.Abs(lo), math.Abs(hi)) {
			break
		}
	}
	return 0.5 * (lo + hi)
}

// factorLDL computes T - sigma*I = L D Lᵀ with unit lower bidiagonal L.
// Returns false if a pivot collapses (caller should perturb sigma).
func factorLDL(n int, d, e []float64, sigma float64, dd, ll []float64) bool {
	dd[0] = d[0] - sigma
	for i := 0; i < n-1; i++ {
		if dd[i] == 0 || math.IsInf(dd[i], 0) || math.IsNaN(dd[i]) {
			return false
		}
		ll[i] = e[i] / dd[i]
		dd[i+1] = (d[i+1] - sigma) - ll[i]*e[i]
	}
	return !math.IsNaN(dd[n-1])
}

// stqds computes the child representation L+ D+ L+ᵀ = L D Lᵀ - tau*I via the
// differential stationary qds transform. Returns the maximum absolute D+
// entry (element growth measure) and false on breakdown.
func stqds(n int, dd, ll []float64, tau float64, dp, lp []float64) (growth float64, ok bool) {
	s := -tau
	for i := 0; i < n-1; i++ {
		dp[i] = dd[i] + s
		if dp[i] == 0 || math.IsNaN(dp[i]) {
			return 0, false
		}
		lp[i] = dd[i] * ll[i] / dp[i]
		s = lp[i]*ll[i]*s - tau
		if g := math.Abs(dp[i]); g > growth {
			growth = g
		}
	}
	dp[n-1] = dd[n-1] + s
	if math.IsNaN(dp[n-1]) {
		return 0, false
	}
	if g := math.Abs(dp[n-1]); g > growth {
		growth = g
	}
	return growth, true
}

// getvec computes the eigenvector of L D Lᵀ for eigenvalue lam via the
// twisted factorization, choosing the twist index that minimizes |γ_r|.
// The result is written (normalized) into z. It returns the Rayleigh
// quotient correction γ_r/‖z‖² (Dhillon's RQI step: lam + rqi is a better
// eigenvalue approximation, converging cubically near the eigenvalue).
func getvec(n int, dd, ll []float64, lam float64, z []float64, pmin float64) (rqi float64) {
	if n == 1 {
		z[0] = 1
		return dd[0] - lam
	}
	lplus := make([]float64, n-1)
	uminus := make([]float64, n-1)
	svals := make([]float64, n) // s entering position i (forward)
	pvals := make([]float64, n) // p at position i (backward)

	// Differential stationary qds: forward sweep.
	s := -lam
	for i := 0; i < n-1; i++ {
		svals[i] = s
		dplus := dd[i] + s
		if math.Abs(dplus) < pmin {
			dplus = math.Copysign(pmin, dplus)
			if dplus == 0 {
				dplus = pmin
			}
		}
		lplus[i] = dd[i] * ll[i] / dplus
		s = lplus[i]*ll[i]*s - lam
		if math.IsNaN(s) {
			s = -lam
		}
	}
	svals[n-1] = s

	// Differential progressive qds: backward sweep.
	p := dd[n-1] - lam
	pvals[n-1] = p
	for i := n - 2; i >= 0; i-- {
		dminus := dd[i]*ll[i]*ll[i] + p
		if math.Abs(dminus) < pmin {
			dminus = math.Copysign(pmin, dminus)
			if dminus == 0 {
				dminus = pmin
			}
		}
		t := dd[i] / dminus
		uminus[i] = ll[i] * t
		p = p*t - lam
		if math.IsNaN(p) {
			p = -lam
		}
		pvals[i] = p
	}

	// Twist index: minimize |γ_r| = |s_r + p_r + lam|.
	r := 0
	best := math.Inf(1)
	gamma := 0.0
	for i := 0; i < n; i++ {
		g := svals[i] + pvals[i] + lam
		ag := math.Abs(g)
		if math.IsNaN(ag) {
			continue
		}
		if ag < best {
			best = ag
			gamma = g
			r = i
		}
	}

	// Solve N_r Δ N_rᵀ z = γ_r e_r: z_r = 1, then propagate outwards.
	z[r] = 1
	for i := r - 1; i >= 0; i-- {
		z[i] = -lplus[i] * z[i+1]
		if math.IsNaN(z[i]) || math.IsInf(z[i], 0) {
			z[i] = 0
		}
	}
	for i := r; i < n-1; i++ {
		z[i+1] = -uminus[i] * z[i]
		if math.IsNaN(z[i+1]) || math.IsInf(z[i+1], 0) {
			z[i+1] = 0
		}
	}
	nrm2 := 0.0
	for _, v := range z[:n] {
		nrm2 += v * v
	}
	if nrm2 == 0 {
		z[r] = 1
		nrm2 = 1
	}
	nrm := math.Sqrt(nrm2)
	for i := 0; i < n; i++ {
		z[i] /= nrm
	}
	// (L D Lᵀ - lam) z = γ_r e_r (z unnormalized, z_r = 1), so the Rayleigh
	// quotient of z is lam + γ_r/‖z‖².
	return gamma / nrm2
}
