module tridiag

go 1.22
