// Package tridiag is a Go reproduction of "Divide and Conquer Symmetric
// Tridiagonal Eigensolver for Multicore Architectures" (Pichon, Haidar,
// Faverge, Kurzak — IPDPS 2015): a task-flow divide & conquer eigensolver on
// a QUARK-style dynamic runtime, with MRRR and QR comparators, a dense
// symmetric pipeline, the paper's test-matrix suite and a benchmark harness
// regenerating every table and figure of the evaluation.
//
// The public API lives in package tridiag/eigen; see README.md for the
// architecture overview and DESIGN.md for the reproduction plan.
package tridiag
