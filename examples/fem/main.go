// FEM: modal analysis of a clamped-free elastic rod — the finite-element
// workload the paper's introduction motivates ("finite-elements computation
// for automobiles").
//
// Axial vibration of a rod discretized with linear elements gives the
// generalized problem K u = ω² M u. With the lumped mass matrix the reduced
// operator M^{-1/2} K M^{-1/2} stays tridiagonal and is solved with
// eigen.Solve; with the consistent mass matrix the reduction is dense and
// exercises the full dense pipeline eigen.SymEigen (Householder
// tridiagonalization → task-flow D&C → back-transformation). The analytic
// natural frequencies of the clamped-free rod are (2k-1)π/2 · c/L.
package main

import (
	"fmt"
	"log"
	"math"

	"tridiag/eigen"
)

func main() {
	const n = 600 // free degrees of freedom
	const Lrod = 1.0
	h := Lrod / float64(n)

	// Element stiffness (EA/h)[1 -1; -1 1], assembled with node 0 clamped.
	// Units chosen so c = sqrt(EA/ρA) = 1.
	dK := make([]float64, n)
	eK := make([]float64, n-1)
	for i := 0; i < n; i++ {
		dK[i] = 2 / h
		if i == n-1 {
			dK[i] = 1 / h // free end has one adjacent element
		}
	}
	for i := range eK {
		eK[i] = -1 / h
	}

	// --- lumped mass: M = diag(h, ..., h, h/2), tridiagonal reduction ---
	mL := make([]float64, n)
	for i := range mL {
		mL[i] = h
	}
	mL[n-1] = h / 2
	dT := make([]float64, n)
	eT := make([]float64, n-1)
	for i := 0; i < n; i++ {
		dT[i] = dK[i] / mL[i]
	}
	for i := 0; i < n-1; i++ {
		eT[i] = eK[i] / math.Sqrt(mL[i]*mL[i+1])
	}
	tri := eigen.Tridiagonal{D: dT, E: eT}
	res, err := eigen.Solve(tri, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clamped-free rod, lumped mass (tridiagonal path):")
	report(res, 5)

	// --- consistent mass: M tridiagonal (h/6)(4, 1) pattern; solve the
	// generalized problem K u = ω² M u directly with the Cholesky-based
	// reduction (eigen.SymGeneralized). ---
	K := make([]float64, n*n)
	M := make([]float64, n*n)
	for i := 0; i < n; i++ {
		K[i+i*n] = dK[i]
		M[i+i*n] = 4 * h / 6
		if i == n-1 {
			M[i+i*n] = 2 * h / 6
		}
		if i < n-1 {
			K[i+1+i*n], K[i+(i+1)*n] = eK[i], eK[i]
			M[i+1+i*n], M[i+(i+1)*n] = h/6, h/6
		}
	}
	res2, err := eigen.SymGeneralized(n, K, n, M, n, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nclamped-free rod, consistent mass (generalized K u = ω² M u):")
	for i := 0; i < 5; i++ {
		omega := math.Sqrt(math.Max(res2.Values[i], 0))
		exact := (2*float64(i) + 1) * math.Pi / 2
		fmt.Printf("  ω%-2d = %12.6f   analytic %12.6f   rel.err %.2e\n",
			i+1, omega, exact, math.Abs(omega-exact)/exact)
	}
	// Generalized modes are mass-orthonormal: check ‖XᵀMX - I‖ instead.
	worst := 0.0
	mcol := make([]float64, n)
	Morig := make([]float64, n*n)
	for i := 0; i < n; i++ {
		Morig[i+i*n] = 4 * h / 6
		if i == n-1 {
			Morig[i+i*n] = 2 * h / 6
		}
		if i < n-1 {
			Morig[i+1+i*n], Morig[i+(i+1)*n] = h/6, h/6
		}
	}
	for j := 0; j < 8; j++ {
		vj := res2.Vector(j)
		for i := 0; i < n; i++ {
			s := Morig[i+i*n] * vj[i]
			if i > 0 {
				s += Morig[i+(i-1)*n] * vj[i-1]
			}
			if i < n-1 {
				s += Morig[i+(i+1)*n] * vj[i+1]
			}
			mcol[i] = s
		}
		for k := 0; k <= j; k++ {
			var s float64
			vk := res2.Vector(k)
			for i := 0; i < n; i++ {
				s += vk[i] * mcol[i]
			}
			if k == j {
				s -= 1
			}
			worst = math.Max(worst, math.Abs(s))
		}
	}
	fmt.Printf("  mass-orthonormality of mode shapes ‖XᵀMX-I‖: %.2e\n", worst)
	fmt.Println("\n(consistent mass overestimates, lumped mass underestimates the")
	fmt.Println(" analytic frequencies — the classical FEM bracketing)")
}

// report prints the first k natural frequencies against the analytic values.
func report(res *eigen.Result, k int) {
	for i := 0; i < k; i++ {
		omega := math.Sqrt(math.Max(res.Values[i], 0))
		exact := (2*float64(i) + 1) * math.Pi / 2
		fmt.Printf("  ω%-2d = %12.6f   analytic %12.6f   rel.err %.2e\n",
			i+1, omega, exact, math.Abs(omega-exact)/exact)
	}
	fmt.Printf("  orthogonality of mode shapes: %.2e\n", eigen.Orthogonality(res))
}
