// Quickstart: solve a symmetric tridiagonal eigenproblem with the task-flow
// divide & conquer solver and verify the decomposition.
package main

import (
	"fmt"
	"log"

	"tridiag/eigen"
)

func main() {
	// The classic (1,2,1) matrix of order 8: its eigenvalues are
	// 2 - 2cos(kπ/9), k = 1..8.
	n := 8
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = 1
	}
	t := eigen.Tridiagonal{D: d, E: e}

	res, err := eigen.Solve(t, nil) // defaults: task-flow D&C, all cores
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("eigenvalues (ascending):")
	for j, v := range res.Values {
		fmt.Printf("  λ%-2d = %10.6f    v%-2d = %v\n", j, v, j, short(res.Vector(j)))
	}
	fmt.Printf("\nverification: orthogonality %.2e, residual %.2e\n",
		eigen.Orthogonality(res), eigen.Residual(t, res))

	// Eigenvalues only, via the root-free QR iteration:
	w, err := eigen.Values(t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("values-only solver agrees: λ0 = %10.6f\n", w[0])
}

func short(v []float64) string {
	s := "["
	for i, x := range v {
		if i == 3 {
			s += " ..."
			break
		}
		s += fmt.Sprintf(" %7.4f", x)
	}
	return s + " ]"
}
