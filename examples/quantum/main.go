// Quantum: bound states of one-dimensional Schrödinger operators.
//
// Discretizing  H ψ = -ψ” + V(x) ψ  on a uniform grid with the standard
// three-point stencil yields a symmetric tridiagonal matrix — the kind of
// eigenproblem the paper's introduction motivates from quantum physics. The
// example computes the low-lying spectrum of the harmonic oscillator
// (exact energies 2k+1 in these units) and of an anharmonic double-well
// potential, using the task-flow D&C solver.
package main

import (
	"fmt"
	"log"
	"math"

	"tridiag/eigen"
)

// hamiltonian builds the grid discretization of -d²/dx² + V on [-L, L].
func hamiltonian(n int, L float64, V func(x float64) float64) (eigen.Tridiagonal, []float64) {
	h := 2 * L / float64(n+1)
	d := make([]float64, n)
	e := make([]float64, n-1)
	xs := make([]float64, n)
	for i := 0; i < n; i++ {
		x := -L + float64(i+1)*h
		xs[i] = x
		d[i] = 2/(h*h) + V(x)
	}
	for i := range e {
		e[i] = -1 / (h * h)
	}
	return eigen.Tridiagonal{D: d, E: e}, xs
}

func main() {
	const n = 2000
	const L = 12.0

	// Harmonic oscillator V(x) = x²: exact energies 1, 3, 5, ...
	Hosc, _ := hamiltonian(n, L, func(x float64) float64 { return x * x })
	res, err := eigen.Solve(Hosc, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("harmonic oscillator, lowest 6 energies (exact: 2k+1):")
	for k := 0; k < 6; k++ {
		exact := float64(2*k + 1)
		fmt.Printf("  E%d = %12.8f   (exact %g, discretization error %.2e)\n",
			k, res.Values[k], exact, math.Abs(res.Values[k]-exact))
	}
	fmt.Printf("  decomposition: orthogonality %.2e, residual %.2e\n\n",
		eigen.Orthogonality(res), eigen.Residual(Hosc, res))

	// Double well V(x) = (x²-4)²/8: near-degenerate tunneling doublets.
	Hdw, xs := hamiltonian(n, L, func(x float64) float64 { s := x*x - 4; return s * s / 8 })
	res, err = eigen.Solve(Hdw, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("double well, lowest 6 energies (tunneling splits the pairs):")
	for k := 0; k < 6; k++ {
		fmt.Printf("  E%d = %12.8f\n", k, res.Values[k])
	}
	fmt.Printf("  doublet splittings: ΔE01 = %.3e, ΔE23 = %.3e (ground split << excited split)\n",
		res.Values[1]-res.Values[0], res.Values[3]-res.Values[2])

	// The ground state is symmetric and peaked in both wells.
	g := res.Vector(0)
	peak, xpeak := 0.0, 0.0
	for i, x := range xs {
		if v := math.Abs(g[i]); x > 0 && v > peak {
			peak, xpeak = v, x
		}
	}
	fmt.Printf("  ground state density peaks near x = ±%.3f (wells at ±2)\n", xpeak)
}
