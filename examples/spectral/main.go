// Spectral: graph partitioning with the Fiedler vector.
//
// A weighted chain of three communities (strong internal couplings, weak
// bridges) has a graph Laplacian that is symmetric tridiagonal. The second
// smallest eigenpair (the Fiedler vector) reveals the community boundaries:
// its sign changes and plateaus separate the clusters. This is the
// statistics/data-analysis workload family from the paper's introduction.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tridiag/eigen"
)

func main() {
	const community = 60
	const communities = 3
	n := community * communities
	rng := rand.New(rand.NewSource(7))

	// Edge weights along the chain: ~1 inside a community, ~1e-3 at the
	// two bridges.
	wts := make([]float64, n-1)
	for i := range wts {
		if (i+1)%community == 0 {
			wts[i] = 1e-3 * (0.5 + rng.Float64())
		} else {
			wts[i] = 0.8 + 0.4*rng.Float64()
		}
	}
	// Laplacian: d_i = sum of incident weights, e_i = -w_i.
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i, w := range wts {
		d[i] += w
		d[i+1] += w
		e[i] = -w
	}
	t := eigen.Tridiagonal{D: d, E: e}

	res, err := eigen.Solve(t, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chain of %d communities × %d nodes\n", communities, community)
	fmt.Printf("λ0 = %.3e (should be ~0: connected graph)\n", res.Values[0])
	fmt.Printf("algebraic connectivity λ1 = %.3e, λ2 = %.3e, spectral gap to λ3 = %.3e\n",
		res.Values[1], res.Values[2], res.Values[3])

	// The Fiedler vector's sign structure partitions the graph; with three
	// communities, eigenvectors 1 and 2 embed the chain into 2-D cluster
	// coordinates. Assign each node to the nearest of three centroids
	// formed from the known structure and count boundary errors.
	fiedler := res.Vector(1)
	cut1, cut2 := findJumps(fiedler)
	fmt.Printf("largest Fiedler-vector jumps at edges %d and %d (true bridges at %d and %d)\n",
		cut1, cut2, community-1, 2*community-1)
	if (cut1 == community-1 || cut2 == community-1) && (cut1 == 2*community-1 || cut2 == 2*community-1) {
		fmt.Println("spectral partition recovered the community boundaries exactly")
	} else {
		fmt.Println("WARNING: spectral partition missed a boundary")
	}

	// Sanity: eigenvalue-only solve agrees with the full one.
	w, err := eigen.Values(t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("values-only cross-check: |λ1 - λ1'| = %.2e\n", abs(w[1]-res.Values[1]))
}

// findJumps returns the indices of the two largest consecutive differences.
func findJumps(v []float64) (int, int) {
	best1, best2 := -1, -1
	mag1, mag2 := 0.0, 0.0
	for i := 0; i < len(v)-1; i++ {
		m := abs(v[i+1] - v[i])
		switch {
		case m > mag1:
			best2, mag2 = best1, mag1
			best1, mag1 = i, m
		case m > mag2:
			best2, mag2 = i, m
		}
	}
	return best1, best2
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
