// Lowrank: data compression with the SVD built on the task-flow D&C
// eigensolver (the paper's proposed SVD extension).
//
// A smooth synthetic 2-D field (a sum of a few separable modes plus noise)
// has rapidly decaying singular values; truncating the SVD at rank r
// compresses it with an error equal to σ_{r+1} — verified here, along with
// the storage saving.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"tridiag/eigen"
)

func main() {
	const m, n = 240, 180
	rng := rand.New(rand.NewSource(42))

	// Field: five separable modes with geometrically decaying weights plus
	// small white noise.
	a := make([]float64, m*n)
	for k := 0; k < 5; k++ {
		w := math.Pow(10, -float64(k))
		fx := float64(k+1) * math.Pi
		for j := 0; j < n; j++ {
			g := math.Cos(fx * float64(j) / float64(n))
			for i := 0; i < m; i++ {
				f := math.Sin(fx * float64(i+1) / float64(m))
				a[i+j*m] += w * f * g
			}
		}
	}
	for i := range a {
		a[i] += 1e-6 * rng.NormFloat64()
	}
	orig := append([]float64(nil), a...)

	r, err := eigen.SVD(m, n, a, m, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("singular value decay (five dominant modes expected):")
	for k := 0; k < 8; k++ {
		fmt.Printf("  σ%-2d = %.3e\n", k+1, r.S[k])
	}

	fmt.Println("\nrank-r truncation error vs σ_{r+1} (they must agree):")
	for _, rank := range []int{1, 3, 5, 7} {
		err2 := truncationError(m, n, orig, r, rank)
		bound := 0.0
		if rank < n {
			bound = r.S[rank]
		}
		full := m * n
		stored := rank * (m + n + 1)
		fmt.Printf("  r=%d: ‖A-A_r‖₂≈%.3e  σ_%d=%.3e  storage %5.1f%%\n",
			rank, err2, rank+1, bound, 100*float64(stored)/float64(full))
	}
}

// truncationError estimates ‖A - A_r‖₂ via a few power iterations on the
// residual.
func truncationError(m, n int, a []float64, r *eigen.SVDResult, rank int) float64 {
	resid := func(x, y []float64) { // y = (A - A_r) x
		for i := 0; i < m; i++ {
			y[i] = 0
		}
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				y[i] += a[i+j*m] * x[j]
			}
		}
		for k := 0; k < rank; k++ {
			var vx float64
			for j := 0; j < n; j++ {
				vx += r.V[j+k*n] * x[j]
			}
			s := r.S[k] * vx
			for i := 0; i < m; i++ {
				y[i] -= s * r.U[i+k*m]
			}
		}
	}
	residT := func(y, x []float64) { // x = (A - A_r)ᵀ y
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < m; i++ {
				s += a[i+j*m] * y[i]
			}
			x[j] = s
		}
		for k := 0; k < rank; k++ {
			var uy float64
			for i := 0; i < m; i++ {
				uy += r.U[i+k*m] * y[i]
			}
			s := r.S[k] * uy
			for j := 0; j < n; j++ {
				x[j] -= s * r.V[j+k*n]
			}
		}
	}
	x := make([]float64, n)
	y := make([]float64, m)
	rng := rand.New(rand.NewSource(1))
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	var sigma float64
	for it := 0; it < 30; it++ {
		resid(x, y)
		var ny float64
		for _, v := range y {
			ny += v * v
		}
		ny = math.Sqrt(ny)
		if ny == 0 {
			return 0
		}
		for i := range y {
			y[i] /= ny
		}
		residT(y, x)
		var nx float64
		for _, v := range x {
			nx += v * v
		}
		sigma = math.Sqrt(nx)
		for j := range x {
			x[j] /= sigma
		}
	}
	return sigma
}
