// Bandstructure: subset eigensolving for a tight-binding chain.
//
// Electronic-structure codes rarely need the full spectrum: only the states
// around the Fermi level matter. This example builds a dimerized
// tight-binding chain (the Su–Schrieffer–Heeger model, which opens a band
// gap), then computes only the eigenstates around the gap with
// eigen.SolveRange — the Θ(nk) subset capability the paper credits to MRRR —
// and compares the cost against a full task-flow D&C solve.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"tridiag/eigen"
)

func main() {
	const cells = 1500
	n := 2 * cells // two sites per unit cell
	t1, t2 := 1.2, 0.8

	// SSH chain: alternating hoppings t1, t2, zero on-site energy.
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range e {
		if i%2 == 0 {
			e[i] = -t1
		} else {
			e[i] = -t2
		}
	}
	tri := eigen.Tridiagonal{D: d, E: e}

	// Band edges: the SSH spectrum is ±|t1±t2|; the gap is 2|t1-t2|.
	fmt.Printf("SSH chain with %d sites (t1=%.1f, t2=%.1f): expected gap %.2f\n",
		n, t1, t2, 2*math.Abs(t1-t2))

	// The k states around the Fermi level (half filling: indices n/2-k/2 ...).
	k := 16
	il := n/2 - k/2
	iu := n/2 + k/2 - 1

	t0 := time.Now()
	sub, err := eigen.SolveRange(tri, il, iu, nil)
	if err != nil {
		log.Fatal(err)
	}
	tSub := time.Since(t0)

	t0 = time.Now()
	full, err := eigen.Solve(tri, nil)
	if err != nil {
		log.Fatal(err)
	}
	tFull := time.Since(t0)

	fmt.Printf("\nstates around the gap (HOMO-2 .. LUMO+2):\n")
	for j := k/2 - 3; j <= k/2+2; j++ {
		label := "valence   "
		if sub.Values[j] > 0 {
			label = "conduction"
		}
		fmt.Printf("  E[%4d] = %+9.6f  (%s)\n", il+j, sub.Values[j], label)
	}
	gap := sub.Values[k/2] - sub.Values[k/2-1]
	fmt.Printf("measured gap %.6f (theory %.6f for the infinite chain)\n",
		gap, 2*math.Abs(t1-t2))

	// subset must agree with the full solve
	worst := 0.0
	for j := 0; j <= iu-il; j++ {
		worst = math.Max(worst, math.Abs(sub.Values[j]-full.Values[il+j]))
	}
	fmt.Printf("\nsubset vs full solve: max eigenvalue deviation %.2e\n", worst)
	fmt.Printf("timing: %d of %d eigenpairs in %v, full solve %v (%.1fx faster)\n",
		k, n, tSub, tFull, float64(tFull)/float64(tSub))

	// The SSH edge-state physics: with open boundaries and t1 > t2 the
	// chain is topologically trivial; flip the pattern for edge modes.
	e2 := make([]float64, n-1)
	for i := range e2 {
		if i%2 == 0 {
			e2[i] = -t2 // weak bond first: topological phase
		} else {
			e2[i] = -t1
		}
	}
	topo, err := eigen.SolveRange(eigen.Tridiagonal{D: d, E: e2}, n/2-1, n/2, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntopological phase mid-gap states: %+.3e, %+.3e (≈0: edge modes)\n",
		topo.Values[0], topo.Values[1])
	// edge modes are localized at the chain ends
	v := topo.Vector(0)
	edgeWeight := 0.0
	for i := 0; i < 20; i++ {
		edgeWeight += v[i]*v[i] + v[n-1-i]*v[n-1-i]
	}
	fmt.Printf("edge-mode weight in the outer 20 sites per side: %.1f%%\n", 100*edgeWeight)
}
